"""Tests for the observability subsystem (repro.obs)."""

import io
import json
import logging

import pytest

from repro.core.simulator import simulate
from repro.obs import (
    ChromeTraceSink,
    CollectingProbe,
    JsonlSink,
    MetricsRegistry,
    RunManifest,
    collect_manifest,
    profile_spec,
)
from repro.obs.log import fields, get_logger, setup_logging
from repro.protocols.registry import PROTOCOLS, create_protocol
from repro.runner import ResultCache, RunSpec, run_sweep
from repro.trace.synthetic import SyntheticWorkload, WorkloadProfile

#: Small fixed-seed workload shared by the bit-identity tests.
PROFILE = WorkloadProfile(name="OBS", length=1500, seed=42, processes=4, processors=4)
N_CACHES = 4
SCALE = 1.0 / 1024.0


def _trace():
    return list(SyntheticWorkload(PROFILE).records())


def _snapshot(result):
    """Everything a probe could plausibly perturb, as comparable data."""
    return (
        result.references,
        dict(result.counters.events),
        dict(result.counters.ops.ops),
        result.counters.ops.transactions,
        result.counters.fanout.as_dict(),
    )


class TestMetricsRegistry:
    def test_counter_accumulates_and_rejects_decrements(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert registry.counter("c").value == 5
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1)
        registry.gauge("g").set(2.5)
        assert registry.gauge("g").value == 2.5

    def test_timer_context_accumulates(self):
        registry = MetricsRegistry()
        timer = registry.timer("t")
        with timer.time():
            pass
        with timer.time():
            pass
        assert timer.count == 2
        assert timer.total_seconds >= 0.0
        assert timer.mean_seconds == timer.total_seconds / 2

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in (3.0, 1.0, 2.0):
            histogram.observe(value)
        summary = histogram.as_dict()
        assert summary["count"] == 3
        assert summary["min"] == 1.0 and summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)

    def test_as_dict_round_trips_through_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(1.5)
        with registry.timer("c").time():
            pass
        registry.histogram("d").observe(7)
        path = tmp_path / "metrics.json"
        registry.write_json(path)
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(registry.as_dict()))
        assert loaded["counters"]["a"] == 1


class TestProbeBitIdentity:
    """With and without a probe, every protocol counts identically."""

    @pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
    def test_probed_run_identical_to_bare_run(self, protocol_name):
        trace = _trace()
        bare = simulate(create_protocol(protocol_name, N_CACHES), trace)
        probe = CollectingProbe()
        probed = simulate(
            create_protocol(protocol_name, N_CACHES), trace, probe=probe
        )
        assert _snapshot(bare) == _snapshot(probed)
        assert len(probe.events) == bare.references

    def test_probe_sees_pipeline_order_and_outcomes(self):
        trace = _trace()
        probe = CollectingProbe()
        result = simulate(create_protocol("dir0b", N_CACHES), trace, probe=probe)
        indices = [event[0] for event in probe.events]
        assert indices == list(range(result.references))
        from collections import Counter

        by_event = Counter(event[4].event for event in probe.events)
        assert dict(by_event) == dict(result.counters.events)


class TestJsonlSink:
    def test_one_line_per_reference_with_expected_fields(self):
        buffer = io.StringIO()
        trace = _trace()
        result = simulate(
            create_protocol("dir0b", N_CACHES), trace, probe=JsonlSink(buffer)
        )
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == result.references
        first = json.loads(lines[0])
        assert set(first) >= {"i", "unit", "access", "block", "event", "ops", "cycles"}
        total_cycles = sum(json.loads(line)["cycles"] for line in lines)
        from repro.interconnect import pipelined_bus

        expected = result.references * result.cycles_per_reference(pipelined_bus())
        assert total_cycles == pytest.approx(expected)

    def test_path_destination_owns_and_closes_the_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        simulate(create_protocol("wti", N_CACHES), _trace(), probe=sink)
        sink.close()
        assert len(path.read_text().splitlines()) > 0


class TestChromeTraceSink:
    def test_emits_loadable_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        with ChromeTraceSink(path) as sink:
            simulate(
                create_protocol("dir0b", N_CACHES),
                _trace(),
                probe=sink.cell("dir0b/OBS"),
            )
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert events[0]["ph"] == "M"  # process_name metadata first
        assert events[0]["args"]["name"] == "dir0b/OBS"
        slices = [event for event in events if event["ph"] == "X"]
        assert len(slices) == 1500
        for event in slices[:50]:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(event)

    def test_cells_get_distinct_pids(self, tmp_path):
        path = tmp_path / "trace.json"
        with ChromeTraceSink(path) as sink:
            for name in ("dir0b", "wti"):
                simulate(
                    create_protocol(name, N_CACHES),
                    _trace(),
                    probe=sink.cell(name),
                )
        events = json.loads(path.read_text())["traceEvents"]
        pids = {event["pid"] for event in events if event["ph"] == "X"}
        assert pids == {0, 1}

    def test_emit_after_close_raises(self, tmp_path):
        sink = ChromeTraceSink(tmp_path / "trace.json")
        probe = sink.cell("x")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            simulate(create_protocol("dir0b", N_CACHES), _trace(), probe=probe)


class TestRunManifest:
    def test_collect_and_round_trip(self, tmp_path):
        spec = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        manifest = collect_manifest(spec.as_dict(), spec.cache_key(), 1.25)
        assert manifest.spec["protocol"] == "dir0b"
        assert manifest.wall_time_s == 1.25
        assert manifest.worker_pid > 0
        path = tmp_path / "m.json"
        manifest.write(path)
        loaded = RunManifest.read(path)
        assert loaded == manifest

    def test_unknown_keys_in_payload_are_ignored(self):
        manifest = collect_manifest({"protocol": "dir0b"}, "key", 0.5)
        payload = manifest.to_dict()
        payload["some_future_field"] = 123
        assert RunManifest.from_dict(payload) == manifest

    def test_sweep_attaches_manifests_and_cache_persists_them(self, tmp_path):
        spec = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        cache = ResultCache(tmp_path, registry=MetricsRegistry())
        cold = run_sweep([spec], cache=cache)
        manifest = cold.outcomes[0].manifest
        assert manifest is not None
        assert manifest.cache_key == spec.cache_key()
        assert cache.manifest_path_for(spec.cache_key()).exists()
        warm = run_sweep([spec], cache=cache)
        assert warm.outcomes[0].cached
        assert warm.outcomes[0].manifest == manifest


class TestCorruptCacheEntries:
    def test_corrupt_entry_is_deleted_counted_and_logged(self, tmp_path, caplog):
        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, registry=registry)
        spec = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        key = spec.cache_key()
        cache.path_for(key).write_bytes(b"not a pickle")
        # setup_logging (run by any earlier CLI test) stops propagation at
        # the "repro" root; re-enable it so caplog's root handler sees us.
        root = logging.getLogger("repro")
        propagate = root.propagate
        root.propagate = True
        try:
            with caplog.at_level(logging.WARNING, logger="repro.runner.cache"):
                assert cache.get(key) is None
        finally:
            root.propagate = propagate
        assert not cache.path_for(key).exists()  # regenerated next run
        assert cache.corrupt == 1 and cache.misses == 1
        assert registry.counter("cache.corrupt").value == 1
        assert any("corrupt cache entry" in r.message for r in caplog.records)

    def test_wrong_type_entry_counts_as_corrupt(self, tmp_path):
        import pickle

        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, registry=registry)
        cache.path_for("bogus").write_bytes(pickle.dumps({"not": "a result"}))
        assert cache.get("bogus") is None
        assert registry.counter("cache.corrupt").value == 1
        assert not cache.path_for("bogus").exists()

    def test_plain_miss_is_not_corrupt(self, tmp_path):
        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, registry=registry)
        assert cache.get("never-written") is None
        assert cache.corrupt == 0
        assert registry.counter("cache.miss").value == 1

    def test_corrupt_entry_is_regenerated_by_a_sweep(self, tmp_path):
        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, registry=registry)
        spec = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        fresh = run_sweep([spec], cache=cache)
        cache.path_for(spec.cache_key()).write_bytes(b"\x00garbage")
        again = run_sweep([spec], cache=cache)
        assert not again.outcomes[0].cached  # resimulated, not trusted
        assert again.cell_table() == fresh.cell_table()
        assert cache.get(spec.cache_key()) is not None  # rewritten


class TestProfile:
    def test_profile_matches_unprofiled_counts(self):
        spec = RunSpec(protocol="dir1nb", trace="POPS", scale=SCALE)
        report = profile_spec(spec)
        assert _snapshot(report.result) == _snapshot(spec.run())

    def test_stage_breakdown_and_render(self):
        spec = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        report = profile_spec(spec)
        assert set(report.stages) == {
            "trace-generation",
            "geometry-stage",
            "protocol-transition",
            "counter-accounting",
        }
        assert sum(report.stages.values()) <= report.wall_seconds
        assert report.refs_per_sec > 0
        rendered = report.render()
        assert "trace-generation" in rendered and "refs/sec" in rendered
        assert "dir0b / POPS" in rendered

    def test_finite_geometry_attributes_stage_time(self):
        spec = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE, geometry="8x2")
        report = profile_spec(spec)
        assert report.stages["geometry-stage"] > 0.0
        assert "geometry 8x2" in report.render()

    def test_shared_registry_reports_per_run_deltas(self):
        registry = MetricsRegistry()
        spec = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        first = profile_spec(spec, registry=registry)
        second = profile_spec(spec, registry=registry)
        total = registry.timer("profile.protocol-transition").total_seconds
        assert (
            first.stages["protocol-transition"]
            + second.stages["protocol-transition"]
        ) == pytest.approx(total)


class TestStructuredLogging:
    def test_json_lines_carry_fields(self):
        stream = io.StringIO()
        setup_logging(level="info", json_lines=True, stream=stream)
        try:
            get_logger("test").info("hello", extra=fields(cells=6, jobs=2))
            payload = json.loads(stream.getvalue())
            assert payload["message"] == "hello"
            assert payload["cells"] == 6 and payload["jobs"] == 2
            assert payload["level"] == "info"
            assert payload["logger"] == "repro.test"
        finally:
            setup_logging(level="warning")

    def test_text_formatter_appends_fields(self):
        stream = io.StringIO()
        setup_logging(level="debug", stream=stream)
        try:
            get_logger("test").debug("msg", extra=fields(key="value"))
            assert "[key=value]" in stream.getvalue()
        finally:
            setup_logging(level="warning")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            setup_logging(level="loud")


class TestSweepMetricsRegistry:
    def test_report_registry_reflects_the_sweep(self, tmp_path):
        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, registry=registry)
        specs = [
            RunSpec(protocol=name, trace="POPS", scale=SCALE)
            for name in ("dir0b", "wti")
        ]
        report = run_sweep(specs, cache=cache, registry=registry)
        snapshot = report.registry.as_dict()
        assert snapshot["counters"]["sweep.cells"] == 2
        assert snapshot["counters"]["sweep.simulated"] == 2
        assert snapshot["counters"]["cache.miss"] == 2
        assert snapshot["timers"]["sweep.wall_seconds"]["count"] == 1
        assert snapshot["histograms"]["sweep.cell_seconds"]["count"] == 2
        warm = run_sweep(specs, cache=cache, registry=registry)
        assert warm.registry.as_dict()["counters"]["sweep.cache_hits"] == 2

    def test_metrics_dict_is_json_serialisable(self):
        spec = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        report = run_sweep([spec])
        payload = json.loads(json.dumps(report.metrics_dict()))
        assert payload["cells"] == 1
        assert payload["registry"]["counters"]["sweep.simulated"] == 1

    def test_probe_factory_streams_each_cell(self, tmp_path):
        path = tmp_path / "sweep_trace.json"
        specs = [
            RunSpec(protocol=name, trace="POPS", scale=SCALE)
            for name in ("dir0b", "dragon")
        ]
        with ChromeTraceSink(path) as sink:
            report = run_sweep(
                specs,
                jobs=2,  # probes force inline execution
                probe_factory=lambda spec: sink.cell(spec.protocol),
            )
        assert report.simulations == 2
        events = json.loads(path.read_text())["traceEvents"]
        pids = {event["pid"] for event in events if event["ph"] == "X"}
        assert pids == {0, 1}

class TestValidateTraceTool:
    """tools/validate_trace.py against real sweep output (not synthetic
    fixtures): a multi-cell per-reference trace and a span trace from the
    same instrumented sweep must both pass the shipped validator."""

    @staticmethod
    def _validator():
        import importlib.util
        from pathlib import Path

        tool = Path(__file__).parents[1] / "tools" / "validate_trace.py"
        spec = importlib.util.spec_from_file_location("validate_trace", tool)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_real_sweep_traces_validate(self, tmp_path):
        from repro.obs import SpanRecorder

        validator = self._validator()
        specs = [
            RunSpec(protocol=name, trace="POPS", scale=SCALE)
            for name in ("dir0b", "dir1b", "dragon")
        ]
        ref_trace = tmp_path / "refs.json"
        telemetry = SpanRecorder()
        with ChromeTraceSink(ref_trace) as sink:
            report = run_sweep(
                specs,
                probe_factory=lambda spec: sink.cell(spec.cell_id()),
                telemetry=telemetry,
            )
        assert report.simulations == 3

        summary = validator.validate_trace(ref_trace)
        assert "OK" in summary
        assert "3 cell tracks" in summary
        assert "spans" not in summary  # per-reference slices carry no span ids

        span_trace = tmp_path / "spans.json"
        telemetry.write_chrome_trace(span_trace)
        span_summary = validator.validate_trace(span_trace)
        assert "OK" in span_summary
        assert "of them spans" in span_summary

        # And the CLI entry point agrees on both files at once.
        assert validator.main([str(ref_trace), str(span_trace)]) == 0

    def test_validator_rejects_a_broken_trace(self, tmp_path, capsys):
        validator = self._validator()
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps(
                {
                    "traceEvents": [
                        {"ph": "X", "name": "orphan", "ts": 0, "dur": 1,
                         "pid": 7, "tid": 0}
                    ]
                }
            ),
            encoding="utf-8",
        )
        assert validator.main([str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err
