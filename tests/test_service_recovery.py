"""Durable service state: the journal, crash recovery, and the chaos seams.

The contracts from the issue:

- every job state transition lands in a crash-safe, fsynced service
  journal whose load tolerates a torn tail (property-tested: truncate
  the file at *any* byte offset and recovery proceeds from the last
  intact record);
- a restarted :class:`JobManager` replays the journal — terminal jobs
  come back queryable, interrupted jobs are re-queued, orphaned sweep
  children are SIGKILLed (pid **and** kernel start time must match, so
  recycled pids are never signalled);
- a re-queued job re-runs through the shared ``ResultCache``, so cells
  the dead incarnation finished are cache hits — **zero duplicate
  simulations**, proven by the kill-9 integration test at the bottom
  against a never-crashed run of the same grid (bit-identical counter
  signatures);
- injected journal write failures (``journal-error`` faults) degrade
  the service instead of killing it, and the degradation is visible in
  ``/readyz``'s payload.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.resilience import FaultPlan, FaultSpec
from repro.runner.sweep import run_sweep
from repro.service import (
    SERVICE_JOURNAL_NAME,
    JobManager,
    ServiceClient,
    ServiceJournal,
    start_background,
)
from repro.service.journal import pid_start_time
from repro.service.schema import REQUEST_SCHEMA_VERSION, parse_request

#: 1/512 of the paper's trace lengths — a few thousand references per cell.
FAST_SCALE = 512


def doc(*protocols, scale=FAST_SCALE, traces=("POPS",), **extra):
    """A minimal valid request document."""
    sweep = {
        "protocols": list(protocols),
        "traces": list(traces),
        "scale": scale,
    }
    sweep.update(extra)
    return {"schema": REQUEST_SCHEMA_VERSION, "sweep": sweep}


def wait_terminal(job, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if job.state in ("finished", "failed", "cancelled"):
            return job
        time.sleep(0.02)
    raise TimeoutError(f"job {job.job_id} still {job.state}")


# -- pid_start_time ------------------------------------------------------------


class TestPidStartTime:
    def test_own_pid_has_a_start_time(self):
        start = pid_start_time(os.getpid())
        assert isinstance(start, str) and start.isdigit()

    def test_dead_pid_returns_none(self):
        # Max pid is bounded well below this on any Linux we run on.
        assert pid_start_time(2**22 + 12345) is None

    def test_stable_across_calls(self):
        assert pid_start_time(os.getpid()) == pid_start_time(os.getpid())


# -- ServiceJournal ------------------------------------------------------------


class TestServiceJournal:
    def journal(self, tmp_path, **kwargs):
        return ServiceJournal(tmp_path / SERVICE_JOURNAL_NAME, **kwargs)

    def test_round_trip_merges_per_job(self, tmp_path):
        journal = self.journal(tmp_path)
        assert journal.record("a", "submitted", request={"x": 1}, cells=3)
        assert journal.record("a", "queued")
        assert journal.record("a", "running", pid=123)
        assert journal.record("b", "submitted", request={"y": 2}, cells=1)
        jobs = journal.load()
        assert set(jobs) == {"a", "b"}
        # Last intact state wins; the submitted-only fields survive.
        assert jobs["a"]["state"] == "running"
        assert jobs["a"]["request"] == {"x": 1}
        assert jobs["a"]["pid"] == 123
        assert jobs["b"]["state"] == "submitted"

    def test_missing_file_loads_empty(self, tmp_path):
        assert self.journal(tmp_path).load() == {}

    def test_torn_tail_is_skipped(self, tmp_path):
        journal = self.journal(tmp_path)
        journal.record("a", "submitted", request={"x": 1})
        journal.record("a", "finished")
        with journal.path.open("a") as handle:
            handle.write('{"event": "job", "id": "a", "state": "expi')
        jobs = journal.load()
        assert jobs["a"]["state"] == "finished"

    def test_journal_torn_fault_writes_a_half_line(self, tmp_path):
        plan = FaultPlan(
            faults=(FaultSpec(cell="finished", kind="journal-torn"),)
        )
        journal = self.journal(tmp_path, plan=plan)
        journal.record("a", "submitted", request={"x": 1})
        journal.record("a", "finished")
        assert not journal.path.read_text().endswith("\n")
        assert journal.load()["a"]["state"] == "submitted"

    def test_journal_error_fault_degrades_not_raises(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        plan = FaultPlan(
            faults=(FaultSpec(cell="queued", kind="journal-error"),)
        )
        journal = self.journal(tmp_path, plan=plan, registry=registry)
        assert journal.record("a", "submitted", request={})
        assert journal.record("a", "queued") is False
        assert registry.counter_value("service.journal_errors") == 1
        # Only the first append of "queued" matches (attempt defaults to 1).
        assert journal.record("b", "queued")

    def test_compact_rewrites_one_line_per_job(self, tmp_path):
        journal = self.journal(tmp_path)
        for state in ("submitted", "queued", "running", "finished"):
            journal.record("a", state)
        journal.record("b", "submitted")
        jobs = journal.load()
        del jobs["b"]
        journal.compact(jobs)
        lines = journal.path.read_text().strip().splitlines()
        assert len(lines) == 1
        assert journal.load()["a"]["state"] == "finished"

    @settings(max_examples=60, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=10_000))
    def test_truncated_at_any_offset_loads_cleanly(self, tmp_path_factory, cut):
        """The hypothesis property from the issue: chop the journal at an
        arbitrary byte offset; load() never raises, and every record
        strictly before the cut survives the merge."""
        tmp_path = tmp_path_factory.mktemp("journal")
        journal = ServiceJournal(tmp_path / SERVICE_JOURNAL_NAME)
        states = ("submitted", "queued", "running", "finished")
        for index, state in enumerate(states):
            journal.record("job", state, seq=index)
        raw = journal.path.read_bytes()
        offset = min(cut, len(raw))
        journal.path.write_bytes(raw[:offset])
        jobs = journal.load()  # must not raise, whatever the cut
        # The survivors are the complete JSON lines — a cut landing on a
        # line's closing brace but before its newline still leaves a full
        # record, so count parseable segments rather than newlines.
        intact = 0
        for segment in raw[:offset].split(b"\n"):
            try:
                json.loads(segment)
            except ValueError:
                continue
            intact += 1
        if intact == 0:
            assert jobs == {}
        else:
            assert jobs["job"]["state"] == states[intact - 1]
            assert jobs["job"]["seq"] == intact - 1


# -- JobManager recovery -------------------------------------------------------


class TestRecovery:
    def test_terminal_job_restored_across_restart(self, tmp_path):
        root = tmp_path / "svc"
        manager = JobManager(root, workers=1)
        job = manager.submit(doc("dir0b"), client="t", idempotency_key="k1")
        wait_terminal(job)
        assert job.state == "finished"
        manager.shutdown()

        reborn = JobManager(root, workers=1)
        assert reborn.wait_recovered(10)
        got = reborn.get(job.job_id)
        assert got is not None and got.state == "finished"
        assert got.recovered and got.snapshot()["recovered"]
        assert reborn.registry.counter_value("service.jobs_recovered") == 1
        assert reborn.registry.timer("service.recovery").count == 1
        # The idempotency map survives the restart too.
        again = reborn.submit(doc("dir0b"), client="t", idempotency_key="k1")
        assert again.job_id == job.job_id
        reborn.shutdown()

    def test_interrupted_job_requeued_and_finishes(self, tmp_path):
        root = tmp_path / "svc"
        # Simulate the aftermath of a SIGKILL: a journal whose last intact
        # state is "queued", with no manager alive to run it.
        journal = ServiceJournal(root / "state" / SERVICE_JOURNAL_NAME)
        payload = doc("dir0b", "dir1nb")
        request = parse_request(payload)
        journal.record(
            "deadbeef0001",
            "submitted",
            sweep_key=request.sweep_key(),
            client="t",
            idempotency_key=None,
            request=payload,
            cells=len(request.specs),
            submitted_at=time.time(),
        )
        journal.record("deadbeef0001", "queued")

        manager = JobManager(root, workers=1)
        assert manager.wait_recovered(10)
        job = manager.get("deadbeef0001")
        assert job is not None and job.recovered
        wait_terminal(job)
        assert job.state == "finished"
        assert job.result_path.exists()
        assert manager.registry.counter_value("service.jobs_recovered") == 1
        manager.shutdown()

    def test_requeued_job_reuses_cached_cells(self, tmp_path):
        """The zero-duplicate-simulation contract, manager-level: every
        cell the dead incarnation completed is served from the cache."""
        root = tmp_path / "svc"
        payload = doc("dir0b", "dir1nb", "dir2b")
        # First incarnation finishes the whole grid (filling the cache)...
        first = JobManager(root, workers=1)
        job = first.submit(payload, client="t")
        wait_terminal(job)
        result = json.loads(job.result_path.read_text())
        assert result["simulated"] == result["cells"] > 0
        first.shutdown()
        # ...but its journal says the job never finished.
        journal = ServiceJournal(root / "state" / SERVICE_JOURNAL_NAME)
        request = parse_request(payload)
        journal.compact({})  # drop the finished record; rebuild as interrupted
        journal.record(
            "deadbeef0002",
            "submitted",
            sweep_key=request.sweep_key(),
            client="t",
            request=payload,
            cells=len(request.specs),
            submitted_at=time.time(),
        )
        journal.record("deadbeef0002", "running")

        reborn = JobManager(root, workers=1)
        assert reborn.wait_recovered(10)
        recovered = wait_terminal(reborn.get("deadbeef0002"))
        assert recovered.state == "finished"
        replay = json.loads(recovered.result_path.read_text())
        assert replay["simulated"] == 0
        assert replay["cache_hits"] == replay["cells"]
        # Bit-identical to the original run, cell for cell.
        original = {o["cell_id"]: o["signature"] for o in result["outcomes"]}
        for outcome in replay["outcomes"]:
            assert outcome["signature"] == original[outcome["cell_id"]]
        reborn.shutdown()

    def test_unparseable_submitted_record_fails_terminally(self, tmp_path):
        root = tmp_path / "svc"
        journal = ServiceJournal(root / "state" / SERVICE_JOURNAL_NAME)
        journal.record("deadbeef0003", "submitted", request={"nope": True})
        journal.record("deadbeef0003", "queued")
        manager = JobManager(root, workers=1)
        assert manager.wait_recovered(10)
        job = manager.get("deadbeef0003")
        assert job is not None and job.state == "failed"
        assert "unrecoverable" in job.error
        manager.shutdown()

    def test_dropped_states_are_not_resurrected(self, tmp_path):
        root = tmp_path / "svc"
        journal = ServiceJournal(root / "state" / SERVICE_JOURNAL_NAME)
        journal.record("gone1", "submitted", request=doc("dir0b"))
        journal.record("gone1", "rejected")
        journal.record("gone2", "submitted", request=doc("dir0b"))
        journal.record("gone2", "finished")
        journal.record("gone2", "expired")
        manager = JobManager(root, workers=1)
        assert manager.wait_recovered(10)
        assert manager.get("gone1") is None
        assert manager.get("gone2") is None
        assert manager.registry.counter_value("service.jobs_recovered") == 0
        manager.shutdown()

    def test_recovery_compacts_the_journal(self, tmp_path):
        root = tmp_path / "svc"
        manager = JobManager(root, workers=1)
        for protocol in ("dir0b", "dir1nb"):
            wait_terminal(manager.submit(doc(protocol), client="t"))
        manager.shutdown()
        journal_path = root / "state" / SERVICE_JOURNAL_NAME
        assert len(journal_path.read_text().strip().splitlines()) > 2
        reborn = JobManager(root, workers=1)
        assert reborn.wait_recovered(10)
        assert len(journal_path.read_text().strip().splitlines()) == 2
        reborn.shutdown()

    def test_orphaned_child_is_reaped(self, tmp_path):
        root = tmp_path / "svc"
        victim = subprocess.Popen([sys.executable, "-c", "import time; time.sleep(600)"])
        try:
            journal = ServiceJournal(root / "state" / SERVICE_JOURNAL_NAME)
            journal.record("deadbeef0004", "submitted", request=doc("dir0b"))
            journal.record(
                "deadbeef0004",
                "running",
                pid=victim.pid,
                pid_start=pid_start_time(victim.pid),
            )
            manager = JobManager(root, workers=1)
            assert manager.wait_recovered(10)
            assert victim.wait(timeout=10) == -signal.SIGKILL
            assert manager.registry.counter_value("service.jobs_orphaned") == 1
            wait_terminal(manager.get("deadbeef0004"))
            manager.shutdown()
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait()

    def test_recycled_pid_is_left_alone(self, tmp_path):
        root = tmp_path / "svc"
        bystander = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(600)"]
        )
        try:
            journal = ServiceJournal(root / "state" / SERVICE_JOURNAL_NAME)
            journal.record("deadbeef0005", "submitted", request=doc("dir0b"))
            # Same pid, *different* kernel start time: the journalled child
            # died and the OS recycled its pid onto an innocent process.
            journal.record(
                "deadbeef0005", "running", pid=bystander.pid, pid_start="1"
            )
            manager = JobManager(root, workers=1)
            assert manager.wait_recovered(10)
            assert bystander.poll() is None  # untouched
            assert manager.registry.counter_value("service.jobs_orphaned") == 0
            manager.shutdown()
        finally:
            bystander.kill()
            bystander.wait()

    def test_no_journal_no_recovery_thread(self, tmp_path):
        manager = JobManager(tmp_path / "svc", workers=1)
        assert not manager.recovering
        assert manager.registry.timer("service.recovery").count == 0
        manager.shutdown()


# -- readiness and degradation over HTTP ---------------------------------------


class TestReadiness:
    def test_healthz_is_liveness_readyz_is_readiness(self, tmp_path):
        manager = JobManager(tmp_path / "svc", workers=1)
        handle = start_background(manager)
        client = ServiceClient(handle.base_url, client="tester")
        try:
            health = client.health()
            assert health["ok"] is True
            assert health["degraded"] == []
            ready = client.ready()
            assert ready["ready"] is True
        finally:
            handle.stop(drain=False)

    def test_readyz_503_while_recovering_healthz_still_200(self, tmp_path):
        from repro.service import ServiceError

        manager = JobManager(tmp_path / "svc", workers=1)
        handle = start_background(manager)
        client = ServiceClient(handle.base_url, client="tester")
        try:
            manager._recovered.clear()  # freeze "recovery in progress"
            assert client.health()["ok"] is True
            with pytest.raises(ServiceError) as excinfo:
                client.ready()
            assert excinfo.value.status == 503
            payload = excinfo.value.payload
            assert payload["recovering"] is True
            assert "recovery_in_progress" in payload["degraded"]
        finally:
            manager._recovered.set()
            handle.stop(drain=False)

    def test_journal_errors_degrade_but_stay_ready(self, tmp_path):
        plan = FaultPlan(
            faults=(FaultSpec(cell="queued", kind="journal-error"),)
        )
        manager = JobManager(tmp_path / "svc", workers=1, fault_plan=plan)
        handle = start_background(manager)
        client = ServiceClient(handle.base_url, client="tester")
        try:
            job_id = client.submit(doc("dir0b"))["id"]
            client.wait(job_id, timeout=60)
            ready = client.ready()  # degraded, but still 200
            assert ready["ready"] is True
            assert ready["journal_errors"] == 1
            assert "journal_errors" in ready["degraded"]
        finally:
            handle.stop(drain=False)


# -- client retry and idempotency over HTTP ------------------------------------


class TestClientRetryAndIdempotency:
    def test_idempotency_key_header_replays_the_job(self, tmp_path):
        manager = JobManager(tmp_path / "svc", workers=1)
        handle = start_background(manager)
        client = ServiceClient(handle.base_url, client="tester")
        try:
            first = client.submit(doc("dir0b"), idempotency_key="retry-1")
            client.wait(first["id"], timeout=60)
            second = client.submit(doc("dir0b"), idempotency_key="retry-1")
            assert second["id"] == first["id"]
            assert second["state"] == "finished"
            assert (
                manager.registry.counter_value("service.jobs_idempotent") == 1
            )
        finally:
            handle.stop(drain=False)

    def test_body_idempotency_key_equivalent_to_header(self, tmp_path):
        manager = JobManager(tmp_path / "svc", workers=1)
        handle = start_background(manager)
        client = ServiceClient(handle.base_url, client="tester")
        try:
            body = doc("dir0b")
            body["idempotency_key"] = "retry-2"
            first = client.submit(body)
            second = client.submit(body)
            assert second["id"] == first["id"]
        finally:
            handle.stop(drain=False)

    def test_invalid_idempotency_key_is_422(self, tmp_path):
        from repro.service import ServiceError

        manager = JobManager(tmp_path / "svc", workers=1)
        handle = start_background(manager)
        client = ServiceClient(handle.base_url, client="tester")
        try:
            with pytest.raises(ServiceError) as excinfo:
                client.submit(doc("dir0b"), idempotency_key="x" * 500)
            assert excinfo.value.status == 422
        finally:
            handle.stop(drain=False)

    def test_cancel_on_terminal_job_is_idempotent(self, tmp_path):
        manager = JobManager(tmp_path / "svc", workers=1)
        handle = start_background(manager)
        client = ServiceClient(handle.base_url, client="tester")
        try:
            job_id = client.submit(doc("dir0b"))["id"]
            done = client.wait(job_id, timeout=60)
            assert done["state"] == "finished"
            # Cancelling a finished job: 200 with the terminal state, twice.
            for _ in range(2):
                snapshot = client.cancel(job_id)
                assert snapshot["state"] == "finished"
        finally:
            handle.stop(drain=False)

    def test_client_retries_503_until_success(self, tmp_path):
        from repro.resilience import RetryPolicy

        manager = JobManager(tmp_path / "svc", workers=1)
        handle = start_background(manager)
        client = ServiceClient(
            handle.base_url,
            client="tester",
            retry=RetryPolicy(retries=5, base_seconds=0.05, cap_seconds=0.2),
        )
        try:
            manager._draining = True  # -> 503 on submit

            def undrain():
                time.sleep(0.3)
                manager._draining = False

            t = threading.Thread(target=undrain)
            t.start()
            job = client.submit(doc("dir0b"))
            t.join()
            assert "id" in job
            # The retrying client stamped its own idempotency key.
            assert "idempotency_key" in job
        finally:
            handle.stop(drain=False)

    def test_client_without_retry_sees_the_503(self, tmp_path):
        from repro.service import ServiceError

        manager = JobManager(tmp_path / "svc", workers=1)
        handle = start_background(manager)
        client = ServiceClient(handle.base_url, client="tester")
        try:
            manager._draining = True
            with pytest.raises(ServiceError) as excinfo:
                client.submit(doc("dir0b"))
            assert excinfo.value.status == 503
        finally:
            manager._draining = False
            handle.stop(drain=False)

    def test_retry_gives_up_after_budget(self, tmp_path):
        from repro.resilience import RetryPolicy
        from repro.service import ServiceError

        manager = JobManager(tmp_path / "svc", workers=1)
        handle = start_background(manager)
        client = ServiceClient(
            handle.base_url,
            client="tester",
            retry=RetryPolicy(retries=2, base_seconds=0.01, cap_seconds=0.02),
        )
        try:
            manager._draining = True
            before = manager.registry.counter_value("service.http_requests")
            with pytest.raises(ServiceError) as excinfo:
                client.submit(doc("dir0b"))
            assert excinfo.value.status == 503
            after = manager.registry.counter_value("service.http_requests")
            assert after - before == 3  # first try + two retries
        finally:
            manager._draining = False
            handle.stop(drain=False)

    def test_connection_errors_retry_too(self, tmp_path):
        from repro.resilience import RetryPolicy

        # Nothing listens here; every attempt fails at the socket layer.
        client = ServiceClient(
            "http://127.0.0.1:1",
            client="tester",
            retry=RetryPolicy(retries=2, base_seconds=0.01, cap_seconds=0.02),
        )
        start = time.monotonic()
        with pytest.raises(OSError):
            client.health()
        # Three attempts with two backoffs in between happened.
        assert time.monotonic() - start >= 0.01


# -- the crash harness: kill -9 the real server, restart, prove no rework ------


SERVE_SNIPPET = """
import sys
from repro.cli import main
sys.exit(main(sys.argv[1:]))
"""


def start_serve(root: Path, port: int = 0, extra=(), log_name="serve.log"):
    """`repro-coherence serve` as a real subprocess; returns (proc, base_url).

    Each incarnation needs its own ``log_name``: the ready-line scan would
    otherwise find the *previous* incarnation's ``listening on`` line.
    """
    log_path = root / log_name
    log = log_path.open("ab")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-c",
            SERVE_SNIPPET,
            "--cache-dir",
            str(root / "svc"),
            "serve",
            "--port",
            str(port),
            "--workers",
            "1",
            *extra,
        ],
        stdout=log,
        stderr=log,
        env={**os.environ, "PYTHONPATH": str(Path(__file__).parent.parent / "src")},
    )
    deadline = time.monotonic() + 30.0
    base_url = None
    while time.monotonic() < deadline and base_url is None:
        if proc.poll() is not None:
            break
        for line in log_path.read_bytes().splitlines():
            if line.startswith(b"listening on "):
                base_url = line.split()[-1].decode()
                break
        time.sleep(0.05)
    log.close()
    if base_url is None:
        proc.kill()
        raise RuntimeError(f"serve did not start: {log_path.read_text()}")
    return proc, base_url


@pytest.mark.slow
class TestKillNineRecovery:
    """SIGKILL the real serve process mid-sweep; restart; prove zero rework."""

    # Scale 32 keeps each cell slow enough (~0.5s) to kill the server with
    # some cells finished and some not.
    GRID = {
        "schema": REQUEST_SCHEMA_VERSION,
        "sweep": {
            "protocols": ["dir0b", "dir1nb", "dirnnb"],
            "traces": ["POPS"],
            "scale": 32,
        },
        "options": {"jobs": 1},
    }

    def cached_cells(self, root: Path) -> int:
        cache = root / "svc" / "cache"
        return len(list(cache.glob("*.pkl"))) if cache.exists() else 0

    def test_kill9_restart_zero_duplicate_simulations(self, tmp_path):
        proc, base_url = start_serve(tmp_path)
        client = ServiceClient(base_url, client="chaos")
        job_id = client.submit(self.GRID, idempotency_key="chaos-1")["id"]

        # Let some cells finish, then SIGKILL the server mid-sweep.
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline and self.cached_cells(tmp_path) < 1:
            time.sleep(0.05)
        assert self.cached_cells(tmp_path) >= 1, "no cell finished in time"
        # Find the sweep child before killing the parent, so we can assert
        # the restarted server reaps it (or it died with the parent).
        journal = ServiceJournal(
            tmp_path / "svc" / "state" / SERVICE_JOURNAL_NAME
        )
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)
        record = journal.load().get(job_id, {})
        assert record.get("state") in ("submitted", "queued", "running")
        # The sweep child survives its parent's SIGKILL and would keep
        # caching cells; freeze the crash state by killing it too (exactly
        # what a whole-machine crash would do).  Orphan *reaping* has its
        # own test above.
        pid = record.get("pid")
        if pid is not None and pid_start_time(pid) == record.get("pid_start"):
            os.kill(pid, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while (
                time.monotonic() < deadline
                and pid_start_time(pid) == record.get("pid_start")
            ):
                time.sleep(0.05)
        finished_before = self.cached_cells(tmp_path)

        # Restart on the same root: recovery must re-queue and finish the
        # job, simulating only the cells the first incarnation never cached.
        proc2, base_url2 = start_serve(tmp_path, log_name="serve2.log")
        try:
            client2 = ServiceClient(base_url2, client="chaos")
            done = client2.wait(job_id, timeout=300, poll_seconds=0.2)
            assert done["state"] == "finished"
            assert done["recovered"] is True
            result = client2.result(job_id)
            cells = result["cells"]
            assert result["simulated"] == cells - finished_before
            assert result["cache_hits"] == finished_before
            metrics = client2.metrics()
            for line in metrics.splitlines():
                if line.startswith("repro_sweep_simulated_total "):
                    assert int(line.split()[-1]) == cells - finished_before
                if line.startswith("repro_service_jobs_recovered_total "):
                    assert int(line.split()[-1]) == 1
            # An orphaned child, if one survived the parent's SIGKILL, was
            # reaped before the re-queue; either way nothing raced the cache.
            pid = record.get("pid")
            if pid is not None:
                assert pid_start_time(pid) != record.get("pid_start")
        finally:
            os.kill(proc2.pid, signal.SIGTERM)
            proc2.wait(timeout=30)

        # The recovered run is bit-identical to a never-crashed local run.
        specs = list(parse_request(self.GRID).specs)
        direct = run_sweep(specs, jobs=1)
        expected = {
            outcome.spec.cell_id(): outcome.result.counters.signature()
            for outcome in direct.outcomes
        }
        for outcome in result["outcomes"]:
            assert outcome["signature"] == expected[outcome["cell_id"]]

    def test_serve_kill_fault_then_restart(self, tmp_path):
        """The deterministic chaos seam: the server SIGKILLs *itself* via
        an injected ``serve-kill`` fault as the first job starts running,
        and a plain restart recovers it."""
        plan = tmp_path / "plan.json"
        plan.write_text(
            json.dumps(
                {
                    "seed": 0,
                    "faults": [
                        {"cell": "running", "kind": "serve-kill", "attempt": 1}
                    ],
                }
            )
        )
        proc, base_url = start_serve(tmp_path, extra=("--fault-plan", str(plan)))
        client = ServiceClient(base_url, client="chaos")
        payload = dict(self.GRID, sweep=dict(self.GRID["sweep"], scale=512))
        job_id = client.submit(payload, idempotency_key="chaos-2")["id"]
        assert proc.wait(timeout=60) == -signal.SIGKILL

        proc2, base_url2 = start_serve(tmp_path, log_name="serve2.log")
        try:
            client2 = ServiceClient(base_url2, client="chaos")
            done = client2.wait(job_id, timeout=120)
            assert done["state"] == "finished"
            assert done["recovered"] is True
        finally:
            os.kill(proc2.pid, signal.SIGTERM)
            proc2.wait(timeout=30)
