"""Splitting trace streams into chunks for sharded simulation.

The runner simulates long traces chunk-at-a-time: protocol state is
threaded through the chunks in order while each chunk tallies into its own
counters, which merge back exactly (see
:func:`repro.core.simulator.simulate_chunks`).  These helpers produce the
chunk streams.  They are deliberately dumb — a chunk is just a list of
consecutive records — because the sharding invariant lives in the
simulator, not in how the trace is cut.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Tuple

from .record import TraceRecord

__all__ = ["iter_chunks", "split_at"]


def iter_chunks(
    trace: Iterable[TraceRecord], chunk_size: int
) -> Iterator[List[TraceRecord]]:
    """Yield consecutive chunks of at most ``chunk_size`` records.

    The final chunk may be short; an empty trace yields nothing.  Chunks
    are materialised lists so a worker can process one while the next is
    being generated.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    iterator = iter(trace)
    while True:
        chunk = list(itertools.islice(iterator, chunk_size))
        if not chunk:
            return
        yield chunk


def split_at(
    trace: Iterable[TraceRecord], index: int
) -> Tuple[List[TraceRecord], List[TraceRecord]]:
    """Materialise ``trace`` and split it at ``index`` into (head, tail)."""
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    records = list(trace)
    return records[:index], records[index:]
