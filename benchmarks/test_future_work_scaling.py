"""The paper's future work: the Section 6 questions at larger machines.

"Note that our data was obtained from a machine with only four processors.
We are trying to obtain traces for a much larger number of processes and
hope to extend our results shortly."  The synthetic engine weak-scales the
POPS-like workload to 8 and 16 processes and re-asks the limited-pointer
questions:

* does "most invalidations touch at most one cache" survive?  (It must,
  for limited-pointer directories to stay attractive.)
* how fast do Dir1B's broadcasts and Dir2NB's displacement misses grow?
  (Finding: Dir2NB's fixed copy cap does *not* weak-scale — displacement
  misses grow steeply with the sharing degree.)
"""

from conftest import SCALE
from repro.analysis.scaling import (
    dirib_broadcast_scaling,
    dirinb_miss_scaling,
    fanout_scaling,
)
from repro.trace.workloads import pops_profile

#: The per-process reference budget is held constant while processes are
#: added, so the 16-way runs are 4x the 4-way trace; keep them affordable.
_SWEEP_SCALE = SCALE / 4.0
_COUNTS = (4, 8, 16)


def test_future_work_scaling(benchmark, save_result):
    base = pops_profile(scale=_SWEEP_SCALE)

    def run():
        return (
            fanout_scaling(base, processor_counts=_COUNTS),
            dirib_broadcast_scaling(base, pointers=1, processor_counts=_COUNTS),
            dirinb_miss_scaling(base, pointers=2, processor_counts=_COUNTS),
        )

    fanout, dir1b, dir2nb = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Dir0B invalidation fan-out vs machine size:"]
    lines += ["  " + point.render() for point in fanout]
    lines.append("Dir1B broadcast rate vs machine size:")
    lines += ["  " + point.render() for point in dir1b]
    lines.append("Dir2NB (copy cap 2) miss rate vs machine size:")
    lines += ["  " + point.render() for point in dir2nb]
    save_result("future_work_scaling", "\n".join(lines))

    # The core Section 6 hypothesis extends to 16 processors: the large
    # majority of invalidation situations still touch at most one cache.
    for point in fanout:
        assert point.share_at_most_one_invalidation > 0.6
    # Mean fan-out grows slowly, far below the machine size.
    assert fanout[-1].mean_invalidation_fanout < 4.0
    # Dir2NB's copy cap, harmless at 4 processors, becomes expensive as the
    # sharing degree grows with the machine — the displacement miss rate
    # rises steeply.  This is the sweep's finding: a *fixed* small i does
    # not weak-scale, which is why the paper's DiriB broadcast-bit hybrid
    # (and the successors it inspired) matter.
    assert dir2nb[-1].data_miss_rate > dir2nb[0].data_miss_rate
    assert dir2nb[-1].data_miss_rate > 2 * fanout[-1].data_miss_rate
