"""Bus contention: refining the end-of-Section-5 processor bound.

The paper's effective-processor estimate divides bus supply by per-processor
demand and calls the result "an optimistic upper bound because we have not
included ... the effects of bus contention".  This module supplies the
missing piece with a standard open-queueing approximation: processors
generating bus transactions at aggregate utilisation ``U`` see their memory
requests delayed by roughly ``1 / (1 - U)`` (M/M/1 response-time scaling),
which throttles how fast they can issue further references.

:func:`speedup_curve` solves the resulting fixed point per processor count
and returns the classic saturating speedup curve; :func:`knee_processors`
finds where the marginal speedup of one more processor drops below a
threshold — a more honest answer than the paper's straight-line bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

__all__ = ["BusContentionModel", "speedup_curve", "knee_processors"]


@dataclass(frozen=True)
class BusContentionModel:
    """One processor's bus demand against one bus's supply.

    ``cycles_per_reference`` is the simulator's metric; a processor at full
    speed issues ``refs_per_second`` references per second, each consuming
    that many bus cycles; the bus supplies ``1e9 / bus_cycle_ns`` cycles per
    second.
    """

    cycles_per_reference: float
    processor_mips: float = 10.0
    bus_cycle_ns: float = 100.0
    refs_per_instruction: float = 2.0

    def __post_init__(self) -> None:
        if self.cycles_per_reference <= 0:
            raise ValueError("cycles_per_reference must be positive")
        if self.processor_mips <= 0 or self.bus_cycle_ns <= 0:
            raise ValueError("processor_mips and bus_cycle_ns must be positive")

    @property
    def demand_fraction(self) -> float:
        """Bus utilisation one full-speed processor would impose."""
        refs_per_second = (
            self.processor_mips * 1e6 * self.refs_per_instruction
        )
        bus_cycles_per_second = 1e9 / self.bus_cycle_ns
        return refs_per_second * self.cycles_per_reference / bus_cycles_per_second

    def utilization(self, n_processors: int, throttle: float = 1.0) -> float:
        """Aggregate bus utilisation with each processor running at
        ``throttle`` of full speed."""
        if n_processors < 0:
            raise ValueError("n_processors must be non-negative")
        return min(1.0, n_processors * throttle * self.demand_fraction)

    def effective_speed(self, n_processors: int) -> float:
        """Per-processor speed (fraction of full speed) at the fixed point.

        Each processor's speed is limited by bus response time: at
        utilisation ``U = n·s·d`` a transaction takes ``1 / (1 - U)`` times
        longer, and a processor spends the ``d`` (demand) share of its time
        on those transactions, so its speed satisfies

            s = 1 / (1 - d + d / (1 - n·s·d)).

        Clearing denominators gives the quadratic
        ``n·d·(1-d)·s² - (1 + n·d)·s + 1 = 0`` whose smaller root is the
        physical operating point (the larger root has U > 1).  As n grows,
        U -> 1 and the aggregate speedup saturates at ``1/d``.
        """
        if n_processors <= 0:
            raise ValueError("n_processors must be positive")
        d = self.demand_fraction
        if d == 0:
            return 1.0
        a = n_processors * d * (1.0 - d)
        b = -(1.0 + n_processors * d)
        c = 1.0
        if a == 0:  # d == 1: the processor does nothing but bus transactions
            return -c / b
        discriminant = b * b - 4 * a * c
        root = (-b - discriminant**0.5) / (2 * a)
        return min(1.0, root)


def speedup_curve(
    model: BusContentionModel, processor_counts: Sequence[int]
) -> Dict[int, float]:
    """Aggregate speedup (n x per-processor speed) for each machine size."""
    return {
        n: n * model.effective_speed(n) for n in processor_counts
    }


def knee_processors(
    model: BusContentionModel,
    max_processors: int = 256,
    marginal_threshold: float = 0.5,
) -> int:
    """Smallest n where adding a processor yields < ``marginal_threshold``
    of a processor's worth of extra speedup (the curve's knee)."""
    if not 0 < marginal_threshold <= 1:
        raise ValueError("marginal_threshold must be in (0, 1]")
    previous = 0.0
    for n in range(1, max_processors + 1):
        current = n * model.effective_speed(n)
        if n > 1 and (current - previous) < marginal_threshold:
            return n
        previous = current
    return max_processors
