"""The reference pipeline: one engine behind every simulation mode.

The paper's methodology is a single conceptual pipeline — an interleaved
trace feeds per-cache state, the protocol transitions on each reference,
and the bus operations it emits are tallied for later pricing.  This module
is that pipeline, composable and reused verbatim by every execution mode:

* **infinite caches** (the paper's Section 4 methodology) — the geometry
  stage is a passthrough;
* **finite caches** (the Section 4 "finite cache size" first-order remark,
  measured directly) — a set-associative LRU stage injects capacity and
  conflict displacements into the protocol state;
* **chunked execution** (the runner's sharding) — protocol state threads
  through consecutive chunks while each chunk tallies into its own
  counters, which merge back exactly;
* **oracle-checked execution** (value-level coherence validation) — every
  access is routed through the :class:`~repro.core.oracle.CoherenceOracle`
  instead of the bare protocol.

Stages compose: a chunked finite run, or an oracle-checked finite run, is
just a pipeline with both options set.  The *only* reference-feed loop in
the package lives in :meth:`ReferencePipeline.feed`; everything else —
``simulate``, ``simulate_chunks``, ``simulate_finite``,
``validate_coherence``, ``model_check`` — is a wrapper over it, so a new
scenario (policy, geometry, workload) is one pipeline stage instead of a
fourth copy of the loop.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional

if TYPE_CHECKING:  # probes are observers; the core never imports obs at runtime
    from ..obs.probe import ReferenceProbe

from ..interconnect.bus import BusCostModel
from ..interconnect.costs import CostSummary, summarize_costs
from ..memory.cache import CacheGeometry, FiniteCache
from ..protocols.base import CoherenceProtocol
from ..trace.record import DEFAULT_BLOCK_SIZE, AccessType, TraceRecord
from ..trace.stream import SharingModel
from .counters import EventFrequencies, SimulationCounters
from .invalidation import InvalidationHistogram
from .oracle import CoherenceOracle

__all__ = [
    "GeometryStage",
    "InfinitePassthrough",
    "SetAssociativeLRU",
    "ReferencePipeline",
    "SimulationResult",
]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one (protocol, trace) simulation.

    ``geometry`` is the cache-geometry spec the run used (``"64x4"`` style,
    see :meth:`~repro.memory.cache.CacheGeometry.spec`), or ``None`` for
    the paper's infinite caches.
    """

    protocol_name: str
    protocol_label: str
    trace_name: str
    counters: SimulationCounters
    n_caches: int
    block_size: int
    sharing_model: SharingModel
    geometry: Optional[str] = None

    @property
    def references(self) -> int:
        return self.counters.references

    @property
    def evictions(self) -> int:
        """Capacity/conflict displacements (0 under infinite caches)."""
        return self.counters.evictions

    @property
    def dirty_evictions(self) -> int:
        return self.counters.dirty_evictions

    def frequencies(self) -> EventFrequencies:
        """Event rates in percent of all references (Table 4 column)."""
        return self.counters.frequencies()

    def cost_summary(self, bus: BusCostModel) -> CostSummary:
        """Bus cycles per reference under ``bus`` (Table 5 column)."""
        return summarize_costs(self.protocol_label, self.counters.ops, bus)

    def cycles_per_reference(self, bus: BusCostModel) -> float:
        return self.cost_summary(bus).cycles_per_reference

    def energy_per_reference(self, bus: BusCostModel) -> Optional[float]:
        """Nanojoules per reference, or ``None`` if ``bus`` has no energy axis."""
        return self.cost_summary(bus).energy_per_reference

    @property
    def invalidation_histogram(self) -> InvalidationHistogram:
        """Fan-out distribution of writes to previously-clean blocks (Fig 1)."""
        return self.counters.fanout


class GeometryStage(abc.ABC):
    """A cache-geometry stage: sits between unit resolution and the protocol.

    The pipeline calls :meth:`before_access` with each data reference before
    the protocol sees it (the stage makes the block resident, displacing a
    victim if needed) and :meth:`after_access` afterwards (the stage mirrors
    any coherence invalidations the protocol performed).  Instruction
    fetches bypass the stage entirely — the paper excludes instruction
    traffic from the data caches throughout.

    To add a geometry or replacement policy, subclass this and pass an
    instance as ``ReferencePipeline(stage=...)``; see docs/architecture.md.
    """

    #: spec string carried into :attr:`SimulationResult.geometry`
    spec: Optional[str] = None

    @abc.abstractmethod
    def before_access(
        self, unit: int, block: int, counters: SimulationCounters
    ) -> None:
        """Make ``block`` resident in ``unit``'s cache, tallying displacements."""

    @abc.abstractmethod
    def after_access(self, unit: int, block: int) -> None:
        """Reconcile residency with the protocol's post-access sharing state."""


class InfinitePassthrough(GeometryStage):
    """The paper's infinite caches: nothing is ever displaced.

    The pipeline treats a ``None`` stage as this passthrough without paying
    the two method calls per reference; the class exists so the infinite
    geometry has an explicit, documentable place in the stage taxonomy.
    """

    spec = None

    def before_access(
        self, unit: int, block: int, counters: SimulationCounters
    ) -> None:
        return None

    def after_access(self, unit: int, block: int) -> None:
        return None


class SetAssociativeLRU(GeometryStage):
    """Set-associative LRU caches with displacement injection.

    Before each data access the block is made resident in the accessing
    cache; any victim is displaced through
    :meth:`~repro.protocols.base.CoherenceProtocol.evict`, whose bus
    operations (dirty write-backs) are added to the tally.  After the
    access, blocks the protocol invalidated in other caches are dropped
    from their finite caches so residency stays consistent.

    The paper's footnote that "coherency-related misses will be fewer in a
    finite-sized cache" (some would-be-invalidated blocks have already been
    purged) emerges naturally from this construction.
    """

    def __init__(self, protocol: CoherenceProtocol, geometry: CacheGeometry) -> None:
        self.protocol = protocol
        self.geometry = geometry
        self.spec = geometry.spec
        self.caches = [FiniteCache(geometry) for _ in range(protocol.n_caches)]

    def before_access(
        self, unit: int, block: int, counters: SimulationCounters
    ) -> None:
        cache = self.caches[unit]
        if not cache.touch(block):
            victim = cache.insert(block)
            if victim is not None:
                counters.evictions += 1
                ops = counters.ops
                for op, count in self.protocol.evict(unit, victim):
                    ops.add(op, count)
                    counters.dirty_evictions += 1

    def after_access(self, unit: int, block: int) -> None:
        holders = self.protocol.sharing.holders(block)
        for other_unit, other_cache in enumerate(self.caches):
            if other_unit != unit and not (holders >> other_unit) & 1:
                other_cache.invalidate(block)


class ReferencePipeline:
    """One engine: trace source -> unit map -> geometry -> protocol -> counters.

    The pipeline owns everything that must survive a chunk boundary — the
    protocol, the sharing-unit registry, the geometry stage's residency,
    the oracle's version bookkeeping, and the invariant-check cadence — so
    feeding a trace in any number of consecutive pieces is bit-identical to
    feeding it whole.

    Args:
        protocol: a freshly constructed protocol (its cache count bounds
            the number of distinct sharing units the trace may contain).
        geometry: finite-cache geometry; ``None`` (default) simulates the
            paper's infinite caches.
        stage: an explicit :class:`GeometryStage`, overriding ``geometry``
            (for custom policies).
        block_size: bytes per block (the paper uses 16 throughout).
        sharing_model: classify sharing by process (paper default) or by
            processor.
        check_invariants_every: if positive, assert the single-writer
            invariant on the sharing table every N references (slow; meant
            for tests).
        check_values: wrap every access in a value-tracking
            :class:`~repro.core.oracle.CoherenceOracle`, raising
            :class:`~repro.core.oracle.CoherenceViolation` on any stale
            read (the oracle is exposed as :attr:`oracle`).
        probe: a :class:`~repro.obs.probe.ReferenceProbe` receiving every
            processed reference (unit, access, block, outcome).  Probes
            observe only — counters and protocol state are bit-identical
            with and without one — and cost the hot loop a single ``None``
            check when absent.
    """

    def __init__(
        self,
        protocol: CoherenceProtocol,
        *,
        geometry: Optional[CacheGeometry] = None,
        stage: Optional[GeometryStage] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        sharing_model: SharingModel = SharingModel.PROCESS,
        check_invariants_every: int = 0,
        check_values: bool = False,
        probe: Optional["ReferenceProbe"] = None,
    ) -> None:
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        if stage is None and geometry is not None:
            stage = SetAssociativeLRU(protocol, geometry)
        if isinstance(stage, InfinitePassthrough):
            stage = None  # the hot loop skips the two no-op calls
        self.protocol = protocol
        self.block_size = block_size
        self.sharing_model = sharing_model
        self.check_invariants_every = check_invariants_every
        self.oracle: Optional[CoherenceOracle] = (
            CoherenceOracle(protocol) if check_values else None
        )
        self._access: Callable[[int, AccessType, int], object] = (
            self.oracle.access if self.oracle is not None else protocol.access
        )
        self._stage = stage
        self._probe = probe
        self._units: dict = {}
        self._by_process = sharing_model is SharingModel.PROCESS
        self._processed = 0

    def attach_probe(self, probe: Optional["ReferenceProbe"]) -> None:
        """Attach (or, with ``None``, detach) the per-reference probe."""
        self._probe = probe

    # -- the engine ------------------------------------------------------------

    def resolve_unit(self, record: TraceRecord) -> int:
        """Dense cache index for the record's sharing unit (pid or cpu).

        The registry is pipeline-owned, so a chunked run assigns the same
        indices as a single-pass run.
        """
        return self.resolve_key(
            record.pid if self._by_process else record.cpu
        )

    def resolve_key(self, key: int) -> int:
        """Dense cache index for a raw sharing-unit key (a pid or cpu id).

        Split out from :meth:`resolve_unit` so alternate feeders (the fast
        backend's column decoder) share the registry — and its overflow
        check — without materialising :class:`TraceRecord` objects.
        """
        units = self._units
        unit = units.get(key)
        if unit is None:
            unit = len(units)
            if unit >= self.protocol.n_caches:
                raise ValueError(
                    f"trace has more than {self.protocol.n_caches} sharing "
                    f"units; construct the protocol with more caches"
                )
            units[key] = unit
        return unit

    def step(
        self,
        unit: int,
        access: AccessType,
        block: int,
        counters: SimulationCounters,
    ):
        """Push one resolved reference through geometry -> protocol -> tally.

        Returns the protocol's :class:`~repro.protocols.base.AccessOutcome`.
        This is the whole per-reference pipeline body; the model checker
        drives it directly with enumerated (cache, access, block) steps.
        """
        stage = self._stage
        data = access is not AccessType.INSTR
        if stage is not None and data:
            stage.before_access(unit, block, counters)
        outcome = self._access(unit, access, block)
        counters.record(outcome)
        if stage is not None and data:
            stage.after_access(unit, block)
        probe = self._probe
        if probe is not None:
            probe.on_reference(self._processed, unit, access, block, outcome)
        self._processed += 1
        every = self.check_invariants_every
        if every and self._processed % every == 0:
            self.protocol.sharing.check_invariants()
        return outcome

    def feed(self, trace: Iterable[TraceRecord], counters: SimulationCounters) -> None:
        """Feed a trace (or one chunk of it) through the pipeline.

        This is the package's only reference-feed loop.  State persists
        across calls, so consecutive ``feed`` calls with fresh counters are
        the chunking contract: chunk boundaries affect only how *counts*
        are accumulated, never the pipeline's state.
        """
        step = self.step
        resolve = self.resolve_unit
        block_size = self.block_size
        for record in trace:
            step(
                resolve(record),
                record.access,
                record.address // block_size,
                counters,
            )

    # -- run wrappers ----------------------------------------------------------

    def run(self, trace: Iterable[TraceRecord], trace_name: str = "trace") -> SimulationResult:
        """Feed the whole trace and package the tallied result."""
        counters = SimulationCounters()
        self.feed(trace, counters)
        return self.result(trace_name, counters)

    def run_chunks(
        self,
        chunks: Iterable[Iterable[TraceRecord]],
        trace_name: str = "trace",
        chunk_done: Optional[Callable[[SimulationCounters], None]] = None,
    ) -> SimulationResult:
        """Feed a trace supplied as consecutive chunks, merging exactly.

        Each chunk tallies into a fresh :class:`SimulationCounters` and the
        per-chunk counters are merged, so the result is bit-identical to
        one :meth:`run` over the concatenated trace — under any geometry
        stage and with or without the oracle.  ``chunk_done``, when given,
        receives each chunk's own counters as it completes (checkpoint and
        progress hook for the runner).
        """
        merged = SimulationCounters()
        for chunk in chunks:
            counters = SimulationCounters()
            self.feed(chunk, counters)
            merged.merge(counters)
            if chunk_done is not None:
                chunk_done(counters)
        return self.result(trace_name, merged)

    def result(
        self, trace_name: str, counters: SimulationCounters
    ) -> SimulationResult:
        """Package ``counters`` as this pipeline's :class:`SimulationResult`."""
        stage = self._stage
        return SimulationResult(
            protocol_name=self.protocol.name,
            protocol_label=self.protocol.label,
            trace_name=trace_name,
            counters=counters,
            n_caches=self.protocol.n_caches,
            block_size=self.block_size,
            sharing_model=self.sharing_model,
            geometry=stage.spec if stage is not None else None,
        )
