"""Interconnect substrate: bus timing models and cost accounting."""

from .bus import (
    TABLE5_CATEGORY,
    BusCostModel,
    BusOp,
    BusTiming,
    Table5Category,
    UnknownBusOpError,
    nonpipelined_bus,
    nonpipelined_cycles,
    pipelined_bus,
    pipelined_cycles,
    standard_buses,
)
from .costs import BusOpCounts, CostSummary, summarize_costs
from .network import (
    NetworkModel,
    Topology,
    network_characterization,
    network_cost_model,
)

__all__ = [
    "TABLE5_CATEGORY",
    "BusCostModel",
    "BusOp",
    "BusTiming",
    "Table5Category",
    "UnknownBusOpError",
    "nonpipelined_bus",
    "nonpipelined_cycles",
    "pipelined_bus",
    "pipelined_cycles",
    "standard_buses",
    "NetworkModel",
    "Topology",
    "network_characterization",
    "network_cost_model",
    "BusOpCounts",
    "CostSummary",
    "summarize_costs",
]
