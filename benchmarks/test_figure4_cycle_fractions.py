"""Figure 4: bus cycle breakdown as a fraction of each scheme's total."""

import pytest

from repro.analysis.figures import figure4
from repro.interconnect import Table5Category

SCHEMES = ("dir1nb", "wti", "dir0b", "dragon")


def test_figure4_cycle_fractions(benchmark, comparison, pipe_bus, save_result):
    figure = benchmark(figure4, comparison, pipe_bus, SCHEMES)
    save_result("figure4_cycle_fractions", figure.render())

    fractions = figure.fractions
    for label in figure.labels:
        assert sum(fractions[label].values()) == pytest.approx(1.0)

    # "In Dir1NB ... the number of bus cycles spent on invalidations and
    # write-backs [is] small compared to the number of memory accesses."
    dir1nb = fractions["Dir1NB"]
    assert dir1nb[Table5Category.MEM_ACCESS] > 0.6
    assert dir1nb[Table5Category.INVALIDATE] < 0.25

    # "most of the bus cycles consumed in WTI are due to the write-through
    # cache policy."
    assert fractions["WTI"][Table5Category.WT_OR_WUP] > 0.5

    # "The Dragon scheme splits its bus cycles evenly between loading up
    # each cache with data and using the bus on write hits."
    dragon = fractions["Dragon"]
    assert 0.2 < dragon[Table5Category.MEM_ACCESS] < 0.8
    assert 0.2 < dragon[Table5Category.WT_OR_WUP] < 0.8

    # Dir0B's non-overlapped directory fraction is small.
    assert fractions["Dir0B"][Table5Category.DIR_ACCESS] < 0.2
