"""Finite-cache extension of the trace-driven simulator.

The paper simulates infinite caches to isolate sharing cost and notes that
"the performance of a system with smaller caches can be estimated to first
order by adding the costs due to the finite cache size" (Section 4).  This
module goes one step further than the paper: it re-runs any protocol with
set-associative LRU caches of a chosen geometry, injecting capacity and
conflict displacements into the protocol state, so the interaction between
cache size and coherence traffic can be measured rather than estimated.

Displacement accounting: an evicted dirty block is written back (a
``WRITE_BACK`` bus op); evicted clean blocks vanish silently.  The paper's
footnote that "coherency-related misses will be fewer in a finite-sized
cache" (some would-be-invalidated blocks have already been purged) emerges
naturally from this construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..memory.cache import CacheGeometry, FiniteCache
from ..protocols.base import CoherenceProtocol
from ..trace.record import DEFAULT_BLOCK_SIZE, AccessType, TraceRecord
from ..trace.stream import SharingModel
from .counters import SimulationCounters
from .simulator import SimulationResult

__all__ = ["FiniteCacheResult", "simulate_finite"]


@dataclass(frozen=True)
class FiniteCacheResult:
    """A finite-cache run: the usual result plus displacement statistics."""

    result: SimulationResult
    evictions: int
    dirty_evictions: int
    geometry: CacheGeometry

    @property
    def eviction_rate(self) -> float:
        """Evictions per reference."""
        if self.result.references == 0:
            return 0.0
        return self.evictions / self.result.references


def simulate_finite(
    protocol: CoherenceProtocol,
    trace: Iterable[TraceRecord],
    geometry: CacheGeometry,
    trace_name: str = "trace",
    block_size: int = DEFAULT_BLOCK_SIZE,
    sharing_model: SharingModel = SharingModel.PROCESS,
) -> FiniteCacheResult:
    """Run ``protocol`` over ``trace`` with finite data caches.

    Instruction fetches bypass the data caches (the paper excludes
    instruction traffic throughout).  Before each data access, the block is
    made resident in the accessing cache's finite cache; any victim is
    displaced through :meth:`CoherenceProtocol.evict`, whose bus operations
    (dirty write-backs) are added to the tally.
    """
    counters = SimulationCounters()
    caches: List[FiniteCache] = [
        FiniteCache(geometry) for _ in range(protocol.n_caches)
    ]
    units: Dict[int, int] = {}
    by_process = sharing_model is SharingModel.PROCESS
    evictions = 0
    dirty_evictions = 0
    for record in trace:
        if record.access is AccessType.INSTR:
            outcome = protocol.access(0, record.access, 0)
            counters.record(outcome)
            continue
        key = record.pid if by_process else record.cpu
        unit = units.get(key)
        if unit is None:
            unit = len(units)
            if unit >= protocol.n_caches:
                raise ValueError(
                    f"trace has more than {protocol.n_caches} sharing units"
                )
            units[key] = unit
        block = record.address // block_size
        cache = caches[unit]
        if not cache.touch(block):
            victim = cache.insert(block)
            if victim is not None:
                evictions += 1
                victim_ops = protocol.evict(unit, victim)
                for op, count in victim_ops:
                    counters.ops.add(op, count)
                    dirty_evictions += 1
        outcome = protocol.access(unit, record.access, block)
        counters.record(outcome)
        # The protocol may have invalidated blocks in other finite caches;
        # mirror those removals so residency stays consistent.
        holders = protocol.sharing.holders(block)
        for other_unit, other_cache in enumerate(caches):
            if other_unit != unit and not (holders >> other_unit) & 1:
                other_cache.invalidate(block)
    result = SimulationResult(
        protocol_name=protocol.name,
        protocol_label=protocol.label,
        trace_name=trace_name,
        counters=counters,
        n_caches=protocol.n_caches,
        block_size=block_size,
        sharing_model=sharing_model,
    )
    return FiniteCacheResult(
        result=result,
        evictions=evictions,
        dirty_evictions=dirty_evictions,
        geometry=geometry,
    )
