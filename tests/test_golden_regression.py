"""Golden-regression harness: pin the paper-facing numbers per protocol.

Every registered protocol is simulated over one fixed-seed synthetic trace
and its Table 4 event frequencies, Table 5 cycles-per-reference (both bus
models), and transaction rate are compared against snapshots in
``tests/golden/``.  The simulation is deterministic pure Python, so any
drift — a refactor that reorders state transitions, a costing change, a
workload tweak — fails loudly here instead of silently shifting the
reproduced paper numbers.

To bless an intentional change::

    PYTHONPATH=src python -m pytest tests/test_golden_regression.py \
        --update-golden

then commit the regenerated ``tests/golden/golden_metrics.json`` alongside
the change that caused it.

The harness honours ``REPRO_GOLDEN_BACKEND`` (``reference`` by default,
``fast`` in a dedicated CI job): the fast backend claims bit-identical
counters, so both backends must reproduce the *same* golden snapshot — any
divergence fails here against numbers the other backend blessed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict

import pytest

from repro.core.simulator import simulate
from repro.interconnect.bus import nonpipelined_bus, pipelined_bus
from repro.protocols.registry import PROTOCOLS, create_protocol
from repro.trace.synthetic import SyntheticWorkload, WorkloadProfile

GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_metrics.json"

#: The pinned workload: small enough to stay fast, seeded so every run of
#: every future revision sees byte-identical input.
GOLDEN_PROFILE = WorkloadProfile(
    name="GOLDEN", length=4000, seed=1988, processes=4, processors=4
)
N_CACHES = 4

#: Which simulation backend produces the numbers under test; both must
#: match the one committed snapshot.
BACKEND = os.environ.get("REPRO_GOLDEN_BACKEND", "reference")

#: Comparison tolerance: the run is deterministic, so this only absorbs
#: JSON round-tripping, not simulation noise.
REL_TOL = 1e-12


def _metrics_for(protocol_name: str, trace) -> Dict[str, object]:
    result = simulate(
        create_protocol(protocol_name, N_CACHES),
        trace,
        trace_name=GOLDEN_PROFILE.name,
        backend=BACKEND,
    )
    return {
        "references": result.references,
        "transactions_per_reference": result.counters.ops.transactions_per_reference,
        "frequencies": result.frequencies().as_dict(),
        "cycles_per_reference": {
            "pipelined": result.cycles_per_reference(pipelined_bus()),
            "nonpipelined": result.cycles_per_reference(nonpipelined_bus()),
        },
    }


@pytest.fixture(scope="module")
def current_metrics() -> Dict[str, Dict[str, object]]:
    trace = list(SyntheticWorkload(GOLDEN_PROFILE).records())
    return {name: _metrics_for(name, trace) for name in sorted(PROTOCOLS)}


@pytest.fixture(scope="module")
def golden_metrics(request, current_metrics) -> Dict[str, Dict[str, object]]:
    if request.config.getoption("--update-golden"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        snapshot = {
            "_meta": {
                "profile": repr(GOLDEN_PROFILE),
                "n_caches": N_CACHES,
                "note": "regenerate with pytest --update-golden",
            },
            "protocols": current_metrics,
        }
        GOLDEN_PATH.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"missing golden snapshot {GOLDEN_PATH}; generate it with "
            "pytest --update-golden"
        )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))["protocols"]


@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
def test_protocol_matches_golden(protocol_name, current_metrics, golden_metrics):
    assert protocol_name in golden_metrics, (
        f"{protocol_name} has no golden entry; rerun with --update-golden"
    )
    current = current_metrics[protocol_name]
    golden = golden_metrics[protocol_name]
    assert current["references"] == golden["references"]
    assert current["transactions_per_reference"] == pytest.approx(
        golden["transactions_per_reference"], rel=REL_TOL
    )
    for bus, cycles in golden["cycles_per_reference"].items():
        assert current["cycles_per_reference"][bus] == pytest.approx(
            cycles, rel=REL_TOL
        ), f"{protocol_name}: cycles/ref drifted on {bus} bus"
    assert set(current["frequencies"]) == set(golden["frequencies"])
    for row, percent in golden["frequencies"].items():
        assert current["frequencies"][row] == pytest.approx(
            percent, rel=REL_TOL, abs=1e-15
        ), f"{protocol_name}: Table 4 row {row!r} drifted"


def test_golden_covers_exactly_the_registry(golden_metrics):
    """A protocol added to (or removed from) the registry must re-bless."""
    assert set(golden_metrics) == set(PROTOCOLS), (
        "golden snapshot out of sync with protocol registry; "
        "rerun with --update-golden"
    )
