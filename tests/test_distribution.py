"""Unit tests for the distributed-directory bandwidth model (Section 7)."""

import pytest

from conftest import trace_of
from repro.analysis.distribution import DirectoryLoadModel, load_model_from_result
from repro.core.simulator import simulate
from repro.protocols import create_protocol


def model(directory_rate=0.01, memory_rate=0.02):
    return DirectoryLoadModel(
        directory_rate=directory_rate, memory_rate=memory_rate
    )


class TestLoadModel:
    def test_centralized_utilization_grows_linearly(self):
        m = model()
        assert m.centralized_utilization(8) == pytest.approx(
            2 * m.centralized_utilization(4)
        )

    def test_distributed_utilization_is_flat(self):
        # The paper's claim: distributing the directory with the processors
        # makes per-module load independent of machine size.
        m = model()
        assert m.distributed_utilization(4) == pytest.approx(
            m.distributed_utilization(256)
        )

    def test_distributed_equals_single_processor_load(self):
        m = model()
        assert m.distributed_utilization(64) == pytest.approx(
            m.centralized_utilization(1)
        )

    def test_max_processors_centralized(self):
        # demand/processor = 0.01*2 + 0.02*4 = 0.10 busy-cycles per cycle.
        assert model().max_processors_centralized(max_utilization=0.8) == 8

    def test_max_processors_with_no_traffic_is_unbounded(self):
        assert model(0.0, 0.0).max_processors_centralized() > 1_000_000

    def test_sweep_structure(self):
        sweep = model().sweep((4, 16))
        assert set(sweep) == {4, 16}
        assert sweep[16]["centralized"] > sweep[16]["distributed"]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DirectoryLoadModel(directory_rate=-1, memory_rate=0)
        with pytest.raises(ValueError):
            DirectoryLoadModel(
                directory_rate=0, memory_rate=0, memory_service_cycles=0
            )
        with pytest.raises(ValueError):
            model().centralized_utilization(0)
        with pytest.raises(ValueError):
            model().max_processors_centralized(max_utilization=0)


class TestLoadModelFromSimulation:
    def test_rates_extracted_from_result(self):
        trace = trace_of(
            [(0, "r", 0), (1, "r", 0), (0, "w", 0), (1, "r", 0), (2, "r", 16)]
        )
        result = simulate(create_protocol("dir0b", 4), trace)
        m = load_model_from_result(result)
        # The write hit to a clean shared block checked the directory.
        assert m.directory_rate > 0
        # Misses and the write-back produced memory traffic.
        assert m.memory_rate > 0

    def test_paper_conclusion_directory_not_a_bottleneck(self):
        """'The bandwidth requirement to the directory ... is shown to be
        not much more severe than the memory bandwidth need.'"""
        from repro.trace import standard_trace

        result = simulate(
            create_protocol("dir0b", 4), standard_trace("POPS", scale=1 / 128)
        )
        m = load_model_from_result(result)
        directory_demand = m.directory_rate * m.directory_service_cycles
        memory_demand = m.memory_rate * m.memory_service_cycles
        assert directory_demand < 2 * memory_demand
