"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

#: Run everything on minuscule traces so the CLI tests stay fast.
FAST = ["--scale", "512"]


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--schemes", "nonesuch"])

    def test_scale_parsed(self):
        args = build_parser().parse_args(["--scale", "32", "table4"])
        assert args.scale == 32.0


class TestCommands:
    def test_compare(self, capsys):
        assert main(FAST + ["compare", "--schemes", "dir0b", "dragon"]) == 0
        out = capsys.readouterr().out
        assert "dir0b" in out and "pipelined" in out

    def test_table4(self, capsys):
        assert main(FAST + ["table4"]) == 0
        assert "rm-blk-cln" in capsys.readouterr().out

    def test_table5(self, capsys):
        assert main(FAST + ["table5"]) == 0
        assert "cumulative" in capsys.readouterr().out

    def test_figure1(self, capsys):
        assert main(FAST + ["figure1"]) == 0
        assert "%" in capsys.readouterr().out

    def test_spinlock(self, capsys):
        assert main(FAST + ["spinlock"]) == 0
        assert "Dir1NB" in capsys.readouterr().out

    def test_trace_stats(self, capsys):
        assert main(FAST + ["trace-stats"]) == 0
        out = capsys.readouterr().out
        assert "POPS" in out and "THOR" in out and "PERO" in out

    def test_storage(self, capsys):
        assert main(["storage", "--caches", "4", "64"]) == 0
        out = capsys.readouterr().out
        assert "Dir0B" in out

    def test_export_trace_text(self, tmp_path, capsys):
        path = tmp_path / "pops.txt"
        assert main(FAST + ["export-trace", "POPS", str(path)]) == 0
        assert path.exists()
        assert "wrote" in capsys.readouterr().out

    def test_export_trace_binary_round_trips(self, tmp_path):
        from repro.trace.atum import read_binary

        path = tmp_path / "pero.bin"
        main(FAST + ["export-trace", "PERO", str(path), "--format", "binary"])
        records = list(read_binary(path))
        assert len(records) > 1000

    def test_classify(self, capsys):
        assert main(FAST + ["classify", "POPS"]) == 0
        out = capsys.readouterr().out
        assert "private" in out and "synchronization" in out

    def test_validate(self, capsys):
        assert main(FAST + ["validate", "dir0b"]) == 0
        assert "coherent" in capsys.readouterr().out

    def test_modelcheck_ok(self, capsys):
        assert main(["modelcheck", "dragon", "--depth", "4"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_timed(self, capsys):
        assert main(FAST + ["timed", "dir0b", "--q", "2"]) == 0
        out = capsys.readouterr().out
        assert "bus util" in out

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["--scale", "-1", "table4"])
