"""End of Section 5: effective-processor upper bound.

"A 10-MIPS processor will therefore require a bus cycle every 1500ns, and a
bus with a cycle time of 100ns will only yield a maximum performance of 15
effective processors."
"""

from repro.core import effective_processors


def test_s5_processor_bound(benchmark, comparison, pipe_bus, save_result):
    best = min(
        comparison.average_cycles(scheme, pipe_bus)
        for scheme in ("dir0b", "dragon")
    )
    bound = benchmark(effective_processors, best)
    paper_bound = effective_processors(0.03)
    save_result(
        "s5_processor_bound",
        "Effective processors on one shared bus (10 MIPS CPUs, 100ns bus):\n"
        f"  best measured scheme: {best:.4f} cycles/ref -> "
        f"{bound:.1f} processors\n"
        f"  paper's 0.03 cycles/ref -> {paper_bound:.1f} processors "
        "(paper says 15)",
    )
    assert 14 < paper_bound < 18
    assert 8 < bound < 40
