"""Run manifests: provenance for every simulation result.

A :class:`RunManifest` records everything needed to reconstruct *how* a
result was produced — the fully resolved spec (including, via
``RunSpec.as_dict()``, the hardware characterization and its content hash
when the pricing axis is set), the package and cache-schema versions, the
cache key the result is stored under, and the execution environment
(hostname, platform, worker pid, wall time, peak RSS).  The
sweep runner attaches one to every executed cell
(:attr:`~repro.runner.sweep.RunOutcome.manifest`), and the result cache
serialises it as ``<key>.manifest.json`` next to the pickled result, so a
cached number found on disk months later can still answer "which code,
which spec, which machine, how long".

Manifests are provenance, not identity: the cache key alone decides
replayability, and a missing or hand-edited manifest never invalidates a
cached result.
"""

from __future__ import annotations

import json
import socket
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from .._version import __version__ as PACKAGE_VERSION

__all__ = ["RunManifest", "collect_manifest", "peak_rss_kb"]

MANIFEST_SCHEMA_VERSION = 1


def peak_rss_kb() -> Optional[int]:
    """This process's peak resident set size in KiB (None if unmeasurable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - reported in bytes there
        rss //= 1024
    return int(rss)


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one executed simulation cell."""

    #: the on-disk cache key the result is (or would be) stored under
    cache_key: str
    #: the fully resolved spec, as plain data (RunSpec.as_dict())
    spec: Mapping[str, Any]
    #: seconds of simulation wall time this cell took
    wall_time_s: float
    package_version: str = PACKAGE_VERSION
    manifest_schema: int = MANIFEST_SCHEMA_VERSION
    hostname: str = field(default_factory=socket.gethostname)
    platform: str = sys.platform
    python: str = field(
        default_factory=lambda: ".".join(map(str, sys.version_info[:3]))
    )
    #: pid of the process that ran the simulation (a sweep worker, usually)
    worker_pid: int = 0
    #: that process's peak RSS in KiB at completion time, if measurable
    peak_rss_kb: Optional[int] = None
    #: unix timestamp of completion
    created: float = field(default_factory=time.time)
    #: structured failure record (RunError.to_dict()) when the cell failed;
    #: None for the normal, successful case
    error: Optional[Mapping[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["spec"] = dict(self.spec)
        if self.error is not None:
            payload["error"] = dict(self.error)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunManifest":
        known = {name for name in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})

    def write(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def read(cls, path: Union[str, Path]) -> "RunManifest":
        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )


def collect_manifest(
    spec: Mapping[str, Any],
    cache_key: str,
    wall_time_s: float,
    worker_pid: int = 0,
    error: Optional[Mapping[str, Any]] = None,
) -> RunManifest:
    """A manifest for a cell just executed (or failed) in this process."""
    import os

    return RunManifest(
        cache_key=cache_key,
        spec=dict(spec),
        wall_time_s=wall_time_s,
        worker_pid=worker_pid or os.getpid(),
        peak_rss_kb=peak_rss_kb(),
        error=dict(error) if error is not None else None,
    )
