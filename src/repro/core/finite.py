"""Finite-cache extension of the trace-driven simulator.

The paper simulates infinite caches to isolate sharing cost and notes that
"the performance of a system with smaller caches can be estimated to first
order by adding the costs due to the finite cache size" (Section 4).  This
module goes one step further than the paper: it re-runs any protocol with
set-associative LRU caches of a chosen geometry, injecting capacity and
conflict displacements into the protocol state, so the interaction between
cache size and coherence traffic can be measured rather than estimated.

The execution itself is the unified reference pipeline with its
:class:`~repro.core.pipeline.SetAssociativeLRU` geometry stage — the same
engine (and the same feed loop) behind :func:`~repro.core.simulator.simulate`;
this module only packages the displacement statistics.  Displacement
accounting: an evicted dirty block is written back (a ``WRITE_BACK`` bus
op); evicted clean blocks vanish silently.  The paper's footnote that
"coherency-related misses will be fewer in a finite-sized cache" (some
would-be-invalidated blocks have already been purged) emerges naturally
from this construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..memory.cache import CacheGeometry
from ..protocols.base import CoherenceProtocol
from ..trace.record import DEFAULT_BLOCK_SIZE, TraceRecord
from ..trace.stream import SharingModel
from .pipeline import ReferencePipeline, SimulationResult

__all__ = ["FiniteCacheResult", "simulate_finite"]


@dataclass(frozen=True)
class FiniteCacheResult:
    """A finite-cache run: the usual result plus displacement statistics."""

    result: SimulationResult
    evictions: int
    dirty_evictions: int
    geometry: CacheGeometry

    @property
    def eviction_rate(self) -> float:
        """Evictions per reference."""
        if self.result.references == 0:
            return 0.0
        return self.evictions / self.result.references


def simulate_finite(
    protocol: CoherenceProtocol,
    trace: Iterable[TraceRecord],
    geometry: CacheGeometry,
    trace_name: str = "trace",
    block_size: int = DEFAULT_BLOCK_SIZE,
    sharing_model: SharingModel = SharingModel.PROCESS,
) -> FiniteCacheResult:
    """Run ``protocol`` over ``trace`` with finite data caches.

    Instruction fetches bypass the data caches (the paper excludes
    instruction traffic throughout).  Before each data access, the block is
    made resident in the accessing cache's finite cache; any victim is
    displaced through :meth:`CoherenceProtocol.evict`, whose bus operations
    (dirty write-backs) are added to the tally.
    """
    pipeline = ReferencePipeline(
        protocol,
        geometry=geometry,
        block_size=block_size,
        sharing_model=sharing_model,
    )
    result = pipeline.run(trace, trace_name)
    return FiniteCacheResult(
        result=result,
        evictions=result.counters.evictions,
        dirty_evictions=result.counters.dirty_evictions,
        geometry=geometry,
    )
