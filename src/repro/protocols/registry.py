"""Protocol registry: build any scheme by name.

The registry maps short names (``"dir0b"``, ``"dragon"``, ...) to factory
callables taking the number of caches.  Parameterised schemes register a few
useful fixed points (``"dir1b"``, ``"dir2nb"``, ...); arbitrary
configurations are available by calling the classes directly.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, List, Optional

from .base import CoherenceProtocol
from .directory.coarse import DirCoarse
from .directory.dir0b import Dir0B
from .directory.dir1nb import Dir1NB
from .directory.dirib import Dir1B, DiriB
from .directory.dirinb import DiriNB
from .directory.dirnnb import DirnNB
from .directory.tang import Tang
from .directory.yenfu import YenFu
from .snoopy.berkeley import Berkeley
from .snoopy.competitive import CompetitiveUpdate
from .snoopy.dragon import Dragon
from .snoopy.firefly import Firefly
from .snoopy.illinois import Illinois
from .snoopy.write_once import WriteOnce
from .snoopy.wti import WTI
from .software_flush import SoftwareFlush

__all__ = [
    "PROTOCOLS",
    "PAPER_CORE_SCHEMES",
    "create_protocol",
    "protocol_names",
    "suggest_protocol",
    "unknown_protocol_message",
]

ProtocolFactory = Callable[[int], CoherenceProtocol]

PROTOCOLS: Dict[str, ProtocolFactory] = {
    "dir1nb": Dir1NB,
    "dirnnb": DirnNB,
    "dir0b": Dir0B,
    "dir1b": Dir1B,
    "dir2b": lambda n: DiriB(n, pointers=2),
    "dir4b": lambda n: DiriB(n, pointers=4),
    "dir2nb": lambda n: DiriNB(n, pointers=2),
    "dir4nb": lambda n: DiriNB(n, pointers=4),
    "tang": Tang,
    "yenfu": YenFu,
    "coarse": DirCoarse,
    "wti": WTI,
    "dragon": Dragon,
    "berkeley": Berkeley,
    "writeonce": WriteOnce,
    "illinois": Illinois,
    "firefly": Firefly,
    "softflush": SoftwareFlush,
    "competitive": CompetitiveUpdate,
    "competitive2": lambda n: CompetitiveUpdate(n, limit=2),
    "competitive8": lambda n: CompetitiveUpdate(n, limit=8),
}

#: The four schemes of the paper's main evaluation (Section 3), in the
#: presentation order of Tables 4 and 5.
PAPER_CORE_SCHEMES = ("dir1nb", "wti", "dir0b", "dragon")


def suggest_protocol(name: str) -> Optional[str]:
    """The closest registered protocol name, if any is plausibly close."""
    matches = difflib.get_close_matches(name.lower(), PROTOCOLS, n=1, cutoff=0.6)
    return matches[0] if matches else None


def unknown_protocol_message(name: str) -> str:
    """One-line error for an unrecognised scheme, with a did-you-mean hint."""
    suggestion = suggest_protocol(name)
    hint = f" (did you mean {suggestion!r}?)" if suggestion else ""
    known = ", ".join(sorted(PROTOCOLS))
    return f"unknown protocol {name!r}{hint}; known: {known}"


def create_protocol(name: str, n_caches: int) -> CoherenceProtocol:
    """Instantiate a registered protocol by short name."""
    try:
        factory = PROTOCOLS[name.lower()]
    except KeyError:
        raise KeyError(unknown_protocol_message(name)) from None
    return factory(n_caches)


def protocol_names() -> List[str]:
    """All registered protocol names, sorted."""
    return sorted(PROTOCOLS)
