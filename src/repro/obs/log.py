"""Structured logging for the package.

All ``repro`` loggers hang off one ``"repro"`` root logger so a single
:func:`setup_logging` call (the CLI's ``--log-level``/``-v``/``--log-json``
flags) configures the whole stack.  Log calls attach machine-readable
fields via ``extra={"fields": {...}}`` — use the :func:`fields` helper —
and both formatters render them: the text formatter appends ``key=value``
pairs, the JSON formatter merges them into the emitted object, so the same
call sites serve humans and log pipelines.

The library itself never calls :func:`setup_logging`; until an application
does, records propagate to the root logger and follow whatever the host
process configured (the standard library-logging contract).
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Mapping, Optional, Union

__all__ = [
    "JsonFormatter",
    "TextFormatter",
    "fields",
    "get_logger",
    "setup_logging",
]

#: Name of the package's root logger; every :func:`get_logger` child
#: inherits its handlers and level.
ROOT_LOGGER = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


def get_logger(name: str) -> logging.Logger:
    """The package logger for ``name`` (e.g. ``"runner.sweep"``)."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def fields(**pairs: object) -> Mapping[str, object]:
    """Structured fields for a log call: ``logger.info(msg, extra=fields(...))``."""
    return {"fields": pairs}


def _record_fields(record: logging.LogRecord) -> Mapping[str, object]:
    extra = getattr(record, "fields", None)
    return extra if isinstance(extra, Mapping) else {}


class TextFormatter(logging.Formatter):
    """Human-readable lines with structured fields as ``key=value`` pairs."""

    def __init__(self) -> None:
        super().__init__("%(levelname).1s %(name)s: %(message)s")

    def format(self, record: logging.LogRecord) -> str:
        text = super().format(record)
        pairs = " ".join(
            f"{key}={value}" for key, value in _record_fields(record).items()
        )
        return f"{text} [{pairs}]" if pairs else text


class JsonFormatter(logging.Formatter):
    """One JSON object per record, structured fields merged in."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        payload.update(_record_fields(record))
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def setup_logging(
    level: Union[str, int] = "warning",
    json_lines: bool = False,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Configure the ``repro`` root logger (idempotent; replaces handlers).

    Args:
        level: a :mod:`logging` level number or one of ``debug`` / ``info``
            / ``warning`` / ``error``.
        json_lines: emit one JSON object per record instead of text.
        stream: destination (default ``sys.stderr``).
    """
    if isinstance(level, str):
        try:
            level = _LEVELS[level.lower()]
        except KeyError:
            known = ", ".join(_LEVELS)
            raise ValueError(f"unknown log level {level!r}; known: {known}")
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_lines else TextFormatter())
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger
