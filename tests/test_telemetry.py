"""Tests for distributed sweep telemetry (repro.obs.telemetry + benchgate).

Covers the span recorder and its cross-process merge, OpenMetrics export,
the worker-delta fix (metrics tallied in a subprocess reach the parent
sweep registry), status snapshots and the ``status`` CLI verb, heartbeat
configuration, and the telemetry-on bit-identity contract across every
protocol.
"""

import importlib.util
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import (
    MetricsRegistry,
    SpanRecorder,
    get_registry,
    read_status,
    render_status,
    set_registry,
    write_status,
)
from repro.obs.telemetry import SPAN_KINDS, Span
from repro.protocols.registry import PROTOCOLS
from repro.resilience import FaultPlan, FaultSpec
from repro.runner import ResultCache, RunSpec, run_sweep
from repro.runner.sweep import (
    HEARTBEAT_ENV,
    HEARTBEAT_SECONDS,
    _resolve_heartbeat,
)

SCALE = 1.0 / 2048.0


def _load_validator():
    """The real tools/validate_trace.py, imported as a module."""
    path = Path(__file__).parents[1] / "tools" / "validate_trace.py"
    spec = importlib.util.spec_from_file_location("validate_trace", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _specs(protocols=("dir0b", "dir1b", "dir2b", "dir4b")):
    return [
        RunSpec(protocol=p, trace="POPS", scale=SCALE, seed=11)
        for p in protocols
    ]


def _signature(result):
    """The deterministic counter signature of one simulation result."""
    return (
        result.references,
        dict(result.counters.events),
        dict(result.counters.ops.ops),
        result.counters.ops.transactions,
        result.counters.fanout.as_dict(),
    )


@dataclass(frozen=True)
class CacheTouchSpec(RunSpec):
    """A spec whose run() exercises a ResultCache *inside* the worker.

    The cache is constructed with the default (process-wide) registry —
    exactly the pattern that used to lose its counters when the run
    happened in a CellExecutor subprocess.
    """

    scratch_dir: str = ""

    def run(self, probe=None):
        cache = ResultCache(self.scratch_dir)
        cache.get(self.cache_key())  # miss
        result = super().run(probe=probe)
        cache.put(self.cache_key(), result)
        cache.get(self.cache_key())  # hit
        return result


@dataclass(frozen=True)
class SlowSpec(RunSpec):
    """A spec that sleeps so a status reader can catch the sweep mid-run."""

    sleep_s: float = 0.3

    def run(self, probe=None):
        time.sleep(self.sleep_s)
        return super().run(probe=probe)


class TestSpanRecorder:
    def test_begin_end_records_hierarchy(self):
        recorder = SpanRecorder()
        root = recorder.begin("sweep x", kind="sweep")
        child = recorder.begin("cell y", kind="cell", parent=root, tid=3)
        child.end(status="ok")
        root.end(status="finished")
        assert len(recorder) == 2
        cell, sweep = recorder.spans
        assert cell.parent_id == sweep.span_id
        assert cell.trace_id == sweep.trace_id == recorder.trace_id
        assert cell.tid == 3
        assert cell.attributes["status"] == "ok"
        assert sweep.end_s >= sweep.start_s

    def test_unknown_kind_rejected(self):
        recorder = SpanRecorder()
        with pytest.raises(ValueError, match="unknown span kind"):
            recorder.begin("x", kind="nonesuch")

    def test_every_declared_kind_is_accepted(self):
        recorder = SpanRecorder()
        for kind in SPAN_KINDS:
            recorder.event(kind, kind=kind)
        assert len(recorder) == len(SPAN_KINDS)

    def test_end_is_idempotent(self):
        recorder = SpanRecorder()
        active = recorder.begin("x", kind="stage")
        active.end()
        active.end()
        assert len(recorder) == 1

    def test_context_manager_flags_errors(self):
        recorder = SpanRecorder()
        with pytest.raises(RuntimeError):
            with recorder.span("boom", kind="stage"):
                raise RuntimeError("nope")
        assert recorder.spans[0].attributes["error"] is True

    def test_serialize_ingest_round_trip(self):
        source = SpanRecorder()
        parent = source.begin("cell", kind="cell")
        source.event("hit", kind="cache_hit", parent=parent, extra=7)
        parent.end()
        sink = SpanRecorder(trace_id=source.trace_id)
        assert sink.ingest(source.serialized()) == 2
        assert [s.to_dict() for s in sink.spans] == [
            s.to_dict() for s in source.spans
        ]

    def test_from_dict_ignores_unknown_keys(self):
        span = Span.from_dict(
            {
                "name": "n", "kind": "stage", "trace_id": "t",
                "span_id": "s", "parent_id": None, "start_s": 1.0,
                "end_s": 2.0, "unknown_future_field": "ignored",
            }
        )
        assert span.duration_s == 1.0

    def test_chrome_trace_passes_the_real_validator(self, tmp_path):
        recorder = SpanRecorder()
        root = recorder.begin("sweep", kind="sweep")
        cell = recorder.begin("cell", kind="cell", parent=root, tid=1)
        recorder.event("retry", kind="retry", parent=cell)
        cell.end()
        root.end()
        destination = tmp_path / "spans.json"
        assert recorder.write_chrome_trace(destination) == 3
        validator = _load_validator()
        summary = validator.validate_trace(destination)
        assert "OK" in summary and "spans" in summary

    def test_chrome_trace_with_no_spans_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no spans"):
            SpanRecorder().write_chrome_trace(tmp_path / "empty.json")


class TestStatusSnapshots:
    def test_write_read_round_trip_is_atomic(self, tmp_path):
        path = tmp_path / "s.status.json"
        write_status(path, {"state": "running", "done": 3})
        status = read_status(path)
        assert status["state"] == "running"
        assert status["schema"] == 1
        assert not list(tmp_path.glob("*.tmp"))

    def test_read_missing_or_torn_returns_none(self, tmp_path):
        assert read_status(tmp_path / "nope.json") is None
        torn = tmp_path / "torn.json"
        torn.write_text('{"state": "run', encoding="utf-8")
        assert read_status(torn) is None

    def test_render_mentions_the_vital_signs(self):
        text = render_status(
            {
                "state": "running", "sweep_id": "abc", "cells": 10,
                "done": 4, "ok": 3, "failed": 1, "running": 2,
                "retries": 1, "timeouts": 0, "cache_hits": 2,
                "repriced": 0, "simulated": 1, "references": 1000,
                "refs_per_sec": 5000.0, "eta_s": 2.5, "wall_s": 1.0,
                "jobs": 4, "ts": time.time(), "pid": 1,
            },
            journal_counts={"ok": 3, "failed": 1},
        )
        assert "4/10 done" in text
        assert "ETA 2.5s" in text
        assert "journal: 3 ok, 1 failed" in text


class TestMergeSnapshot:
    def test_counters_timers_histograms_fold_gauges_overwrite(self):
        parent = MetricsRegistry()
        parent.counter("c").inc(2)
        parent.gauge("g").set(1.0)
        parent.timer("t").add(1.0)
        parent.histogram("h").observe(5.0)
        child = MetricsRegistry()
        child.counter("c").inc(3)
        child.gauge("g").set(9.0)
        child.timer("t").add(2.0)
        child.histogram("h").observe(1.0)
        child.histogram("h").observe(10.0)
        parent.merge_snapshot(child.as_dict())
        assert parent.counter("c").value == 5
        assert parent.gauge("g").value == 9.0
        assert parent.timer("t").count == 2
        assert parent.timer("t").total_seconds == pytest.approx(3.0)
        histogram = parent.histogram("h")
        assert histogram.count == 3
        assert histogram.min == 1.0 and histogram.max == 10.0

    def test_empty_histograms_do_not_poison_bounds(self):
        parent = MetricsRegistry()
        parent.histogram("h").observe(5.0)
        empty = MetricsRegistry()
        empty.histogram("h")  # created but never observed
        parent.merge_snapshot(empty.as_dict())
        assert parent.histogram("h").count == 1
        assert parent.histogram("h").min == 5.0

    def test_set_registry_swaps_and_restores(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            assert set_registry(previous) is fresh
        assert get_registry() is previous


class TestOpenMetrics:
    def test_families_samples_and_terminator(self):
        registry = MetricsRegistry()
        registry.counter("sweep.cache_hits").inc(3)
        registry.gauge("sweep.refs_per_sec").set(1234.5)
        registry.timer("sweep.wall_seconds").add(2.0)
        registry.histogram("sweep.cell_seconds").observe(0.5)
        text = registry.to_openmetrics()
        assert "# TYPE repro_sweep_cache_hits counter" in text
        assert "repro_sweep_cache_hits_total 3" in text
        assert "repro_sweep_refs_per_sec 1234.5" in text
        assert "repro_sweep_wall_seconds_count 1" in text
        assert "repro_sweep_cell_seconds_sum 0.5" in text
        assert "repro_sweep_cell_seconds_min 0.5" in text
        assert text.endswith("# EOF\n")

    def test_names_are_mangled_to_the_charset(self):
        registry = MetricsRegistry()
        registry.counter("cache.hit-rate %").inc()
        text = registry.to_openmetrics()
        assert "repro_cache_hit_rate___total 1" in text

    def test_write_openmetrics(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        path = tmp_path / "metrics.om"
        registry.write_openmetrics(path)
        assert path.read_text(encoding="utf-8").endswith("# EOF\n")


class TestWorkerDeltaMerge:
    def test_worker_cache_counters_reach_the_parent_registry(self, tmp_path):
        """Satellite regression: a cache hit inside a worker subprocess
        must increment the parent sweep registry's cache counters."""
        scratch = tmp_path / "worker-cache"
        scratch.mkdir()
        specs = [
            CacheTouchSpec(
                protocol=p, trace="POPS", scale=SCALE, seed=11,
                scratch_dir=str(scratch),
            )
            for p in ("dir0b", "dir1b")
        ]
        report = run_sweep(specs, jobs=2)
        counters = report.registry.as_dict()["counters"]
        assert counters.get("cache.hit", 0) >= 2
        assert counters.get("cache.miss", 0) >= 2

    def test_serial_inline_run_still_counts(self, tmp_path):
        scratch = tmp_path / "inline-cache"
        scratch.mkdir()
        spec = CacheTouchSpec(
            protocol="dir0b", trace="POPS", scale=SCALE, seed=11,
            scratch_dir=str(scratch),
        )
        previous = set_registry(MetricsRegistry())
        try:
            run_sweep([spec], jobs=1)
            counters = get_registry().as_dict()["counters"]
        finally:
            set_registry(previous)
        assert counters.get("cache.hit", 0) >= 1


class TestSweepTelemetry:
    def test_parallel_sweep_spans_cover_two_worker_pids(self, tmp_path):
        recorder = SpanRecorder()
        report = run_sweep(_specs(), jobs=4, telemetry=recorder)
        assert len(report.failures) == 0
        kinds = {span.kind for span in recorder.spans}
        assert {"sweep", "cell", "attempt", "stage"} <= kinds
        worker_pids = {
            span.pid
            for span in recorder.spans
            if span.kind in ("attempt", "stage")
        }
        assert os.getpid() not in worker_pids
        assert len(worker_pids) >= 2
        destination = tmp_path / "sweep-spans.json"
        recorder.write_chrome_trace(destination)
        assert "OK" in _load_validator().validate_trace(destination)

    def test_fault_and_retry_markers_recorded(self):
        recorder = SpanRecorder()
        plan = FaultPlan(
            faults=(FaultSpec(cell="dir0b:*", kind="raise", attempt=1),)
        )
        report = run_sweep(
            _specs(("dir0b", "dir1b")), jobs=2,
            telemetry=recorder, retry=1, faults=plan,
        )
        assert len(report.failures) == 0
        kinds = {span.kind for span in recorder.spans}
        assert "retry" in kinds and "fault" in kinds
        retry = next(s for s in recorder.spans if s.kind == "retry")
        assert retry.attributes["attempt"] == 1

    def test_cache_hit_and_reprice_markers(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = _specs(("dir0b", "dir1b"))
        run_sweep(specs, cache=cache)
        recorder = SpanRecorder()
        run_sweep(specs, cache=cache, telemetry=recorder)
        hits = [s for s in recorder.spans if s.kind == "cache_hit"]
        assert len(hits) == 2
        repriced_specs = [
            RunSpec(
                protocol="dir4b", trace="POPS", scale=SCALE, seed=11,
                characterization=c,
            )
            for c in ("pipelined", "non-pipelined")
        ]
        run_sweep(repriced_specs, telemetry=recorder)
        assert any(s.kind == "reprice" for s in recorder.spans)

    def test_counters_bit_identical_with_full_telemetry(self, tmp_path):
        """Acceptance: every protocol's counters are identical between a
        telemetry-off serial run and a fully instrumented parallel sweep
        (spans + status snapshot + OpenMetrics + merged worker deltas)."""
        specs = [
            RunSpec(protocol=p, trace="POPS", scale=SCALE, seed=11)
            for p in sorted(PROTOCOLS)
        ]
        bare = {s.protocol: _signature(s.run()) for s in specs}
        recorder = SpanRecorder()
        report = run_sweep(
            specs,
            jobs=2,
            telemetry=recorder,
            heartbeat_seconds=0.01,
            status_path=tmp_path / "sweep.status.json",
        )
        instrumented = {
            o.spec.protocol: _signature(o.result) for o in report.outcomes
        }
        assert instrumented == bare
        # The exports exist and are well-formed alongside identical counters.
        assert read_status(tmp_path / "sweep.status.json")["state"] == "finished"
        assert report.registry.to_openmetrics().endswith("# EOF\n")
        assert len(recorder) > len(specs)

    def test_status_snapshot_lands_next_to_the_journal(self, tmp_path):
        from repro.resilience import SweepJournal

        specs = _specs(("dir0b",))
        journal = SweepJournal.for_sweep(
            tmp_path, [s.cache_key() for s in specs]
        )
        run_sweep(specs, journal=journal)
        snapshots = list(tmp_path.glob("*.status.json"))
        assert len(snapshots) == 1
        status = read_status(snapshots[0])
        assert status["state"] == "finished"
        assert status["journal"] == str(journal.path)

    def test_status_write_failure_does_not_kill_the_sweep(self, tmp_path):
        report = run_sweep(
            _specs(("dir0b",)),
            status_path=tmp_path / "no-such-dir" / "s.status.json",
        )
        assert len(report.failures) == 0


class TestHeartbeatConfig:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(HEARTBEAT_ENV, "99")
        assert _resolve_heartbeat(2.5) == 2.5

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(HEARTBEAT_ENV, "0.25")
        assert _resolve_heartbeat(None) == 0.25

    def test_default(self, monkeypatch):
        monkeypatch.delenv(HEARTBEAT_ENV, raising=False)
        assert _resolve_heartbeat(None) == HEARTBEAT_SECONDS

    def test_zero_disables_and_negative_rejected(self):
        assert _resolve_heartbeat(0) == 0.0
        with pytest.raises(ValueError, match=">= 0"):
            _resolve_heartbeat(-1)

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(HEARTBEAT_ENV, "soon")
        with pytest.raises(ValueError, match=HEARTBEAT_ENV):
            _resolve_heartbeat(None)

    def test_zero_heartbeat_sweep_still_writes_start_and_end(self, tmp_path):
        status = tmp_path / "s.status.json"
        run_sweep(
            _specs(("dir0b",)), heartbeat_seconds=0, status_path=status
        )
        assert read_status(status)["state"] == "finished"


class TestStatusVerb:
    def test_status_renders_mid_sweep_from_another_entry_point(
        self, tmp_path, capsys
    ):
        """A status invocation while the sweep is still running sees a
        'running' snapshot (the CLI path a separate process would take)."""
        status_path = tmp_path / "live.status.json"
        specs = [
            SlowSpec(protocol=p, trace="POPS", scale=SCALE, seed=11)
            for p in ("dir0b", "dir1b", "dir2b", "dir4b")
        ]
        worker = threading.Thread(
            target=run_sweep,
            args=(specs,),
            kwargs={
                "heartbeat_seconds": 0.02,
                "status_path": status_path,
            },
        )
        worker.start()
        try:
            deadline = time.monotonic() + 10.0
            seen_running = False
            while time.monotonic() < deadline:
                status = read_status(status_path)
                if status is not None and status["state"] == "running":
                    seen_running = True
                    break
                time.sleep(0.01)
            assert seen_running
            assert main(["status", "--status-file", str(status_path)]) == 0
        finally:
            worker.join()
        out = capsys.readouterr().out
        assert "sweep" in out and "cells:" in out

    def test_status_picks_newest_snapshot_in_cache_dir(self, tmp_path, capsys):
        old = tmp_path / "old.status.json"
        new = tmp_path / "new.status.json"
        write_status(old, {"state": "finished", "sweep_id": "older"})
        time.sleep(0.05)
        write_status(new, {"state": "finished", "sweep_id": "newer"})
        assert main(["status", "--cache-dir", str(tmp_path)]) == 0
        assert "newer" in capsys.readouterr().out

    def test_status_without_source_is_a_usage_error(self, capsys):
        assert main(["status"]) == 2
        assert "--status-file" in capsys.readouterr().err

    def test_status_missing_snapshot_exits_one(self, tmp_path, capsys):
        assert main(
            ["status", "--status-file", str(tmp_path / "gone.json")]
        ) == 1
        assert "no readable snapshot" in capsys.readouterr().err

    def test_watch_must_be_positive(self, tmp_path):
        assert main(
            ["status", "--status-file", str(tmp_path / "x.json"),
             "--watch", "0"]
        ) == 2
