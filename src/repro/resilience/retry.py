"""Retry policy: bounded attempts, exponential backoff, deterministic jitter.

The sweep runner retries failed cells (exceptions, timeouts, killed
workers) up to ``retries`` extra attempts.  Backoff doubles per attempt up
to a cap, and the jitter that de-synchronises retrying workers is derived
from a SHA-256 of the cell's cache key and the attempt number — **not**
from wall-clock randomness — so a given grid always waits the exact same
schedule run after run.  That keeps the whole resilience layer replayable:
a seeded :class:`~repro.resilience.faults.FaultPlan` plus a fixed policy
produces one deterministic execution trace.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many extra attempts a failed cell gets, and how long to wait."""

    #: extra attempts after the first (0 = fail on first error)
    retries: int = 0
    #: backoff before the first retry, in seconds
    base_seconds: float = 0.05
    #: ceiling on any single backoff, in seconds
    cap_seconds: float = 2.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.base_seconds < 0 or self.cap_seconds < 0:
            raise ValueError("backoff seconds must be >= 0")

    @property
    def max_attempts(self) -> int:
        """Total attempts a cell may consume (first try + retries)."""
        return self.retries + 1

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to wait before re-dispatching ``key`` after ``attempt`` failed.

        ``attempt`` is 1-based (the attempt that just failed).  The value
        is ``base * 2^(attempt-1)`` capped at ``cap_seconds``, scaled by a
        jitter factor in ``[0.5, 1.0)`` hashed from ``(key, attempt)`` —
        fully deterministic, never wall-clock random.
        """
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        raw = min(self.cap_seconds, self.base_seconds * (2 ** (attempt - 1)))
        digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
        jitter = int.from_bytes(digest[:8], "big") / 2**64  # [0.0, 1.0)
        return raw * (0.5 + 0.5 * jitter)
