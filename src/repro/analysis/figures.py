"""Data series for the paper's figures (1 through 5).

Figures are returned as plain data (labels, series, bar values) plus a
``render()`` ASCII view, so the benchmark harness can print the same series
the paper plots without any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.comparison import ComparisonResult
from ..core.invalidation import InvalidationHistogram
from ..interconnect.bus import (
    BusCostModel,
    Table5Category,
    nonpipelined_bus,
)
from ._defaults import _default_bus

__all__ = [
    "Figure1",
    "figure1",
    "RangeBars",
    "figure2",
    "figure3",
    "Figure4",
    "figure4",
    "figure5",
    "figure_energy",
]


@dataclass(frozen=True)
class Figure1:
    """Histogram: caches invalidated per write to a previously-clean block."""

    percentages: Sequence[float]  # index = fan-out
    share_at_most_one: float
    mean_fanout: float

    def render(self) -> str:
        lines = [
            "Figure 1: Number of caches invalidated on a write to a",
            "previously-clean block (% of such writes)",
        ]
        for fanout, percent in enumerate(self.percentages):
            bar = "#" * int(round(percent / 2))
            lines.append(f"{fanout:>2} | {percent:5.1f}% {bar}")
        lines.append(
            f"share with <= 1 invalidation: {100 * self.share_at_most_one:.1f}% "
            "(paper: over 85%)"
        )
        return "\n".join(lines)


def figure1(
    comparison: ComparisonResult, scheme: str = "dir0b"
) -> Figure1:
    """Figure 1 from a comparison run (pooled over all traces)."""
    histogram: InvalidationHistogram = comparison.pooled_invalidation_histogram(
        scheme
    )
    return Figure1(
        percentages=tuple(histogram.percentages()),
        share_at_most_one=histogram.share_at_most(1),
        mean_fanout=histogram.mean_fanout,
    )


@dataclass(frozen=True)
class RangeBars:
    """Bars spanning pipelined (low) to non-pipelined (high) bus cycles.

    Used for Figures 2 (trace average) and 3 (per trace).
    """

    title: str
    labels: Sequence[str]
    #: series name -> (low, high) per scheme, in label order
    series: Mapping[str, Sequence[Tuple[float, float]]]

    def render(self) -> str:
        lines = [self.title]
        for name, bars in self.series.items():
            lines.append(f"  {name}:")
            for label, (low, high) in zip(self.labels, bars):
                lines.append(
                    f"    {label:<10} {low:7.4f} .. {high:7.4f} cycles/ref"
                )
        return "\n".join(lines)


def figure2(
    comparison: ComparisonResult, schemes: Optional[Sequence[str]] = None
) -> RangeBars:
    """Figure 2: average bus cycle range per scheme (both bus models)."""
    schemes = tuple(schemes or comparison.protocols)
    pipe, nonpipe = _default_bus(), nonpipelined_bus()
    labels = [
        comparison.results[s][comparison.traces[0]].protocol_label
        for s in schemes
    ]
    bars = [
        (comparison.average_cycles(s, pipe), comparison.average_cycles(s, nonpipe))
        for s in schemes
    ]
    return RangeBars(
        title=(
            "Figure 2: Range of bus cycle requirements (average over traces); "
            "low endpoint = pipelined bus, high = non-pipelined"
        ),
        labels=labels,
        series={"average": bars},
    )


def figure3(
    comparison: ComparisonResult, schemes: Optional[Sequence[str]] = None
) -> RangeBars:
    """Figure 3: per-trace bus cycle ranges (POPS and THOR high, PERO low)."""
    schemes = tuple(schemes or comparison.protocols)
    pipe, nonpipe = _default_bus(), nonpipelined_bus()
    labels = [
        comparison.results[s][comparison.traces[0]].protocol_label
        for s in schemes
    ]
    series: Dict[str, List[Tuple[float, float]]] = {}
    for trace in comparison.traces:
        series[trace] = [
            (
                comparison.results[s][trace].cycles_per_reference(pipe),
                comparison.results[s][trace].cycles_per_reference(nonpipe),
            )
            for s in schemes
        ]
    return RangeBars(
        title=(
            "Figure 3: Range of bus cycle requirements per trace; "
            "low endpoint = pipelined bus, high = non-pipelined"
        ),
        labels=labels,
        series=series,
    )


@dataclass(frozen=True)
class Figure4:
    """Per-scheme breakdown of bus cycles as fractions of the total."""

    labels: Sequence[str]
    fractions: Mapping[str, Mapping[Table5Category, float]]  # scheme label ->

    def render(self) -> str:
        lines = [
            "Figure 4: Bus cycle breakdown as a fraction of each scheme's total"
        ]
        for label in self.labels:
            lines.append(f"  {label}:")
            for category, fraction in self.fractions[label].items():
                if fraction > 0:
                    bar = "#" * int(round(fraction * 40))
                    lines.append(
                        f"    {category.value:<12} {100 * fraction:5.1f}% {bar}"
                    )
        return "\n".join(lines)


def figure4(
    comparison: ComparisonResult,
    bus: Optional[BusCostModel] = None,
    schemes: Optional[Sequence[str]] = None,
) -> Figure4:
    """Figure 4 (pipelined bus by default)."""
    bus = _default_bus(bus)
    schemes = tuple(schemes or comparison.protocols)
    fractions: Dict[str, Dict[Table5Category, float]] = {}
    labels = []
    for scheme in schemes:
        label = comparison.results[scheme][comparison.traces[0]].protocol_label
        labels.append(label)
        by_category = comparison.average_category_cycles(scheme, bus)
        total = sum(by_category.values())
        fractions[label] = {
            category: (cycles / total if total else 0.0)
            for category, cycles in by_category.items()
        }
    return Figure4(labels=labels, fractions=fractions)


def figure5(
    comparison: ComparisonResult,
    bus: Optional[BusCostModel] = None,
    schemes: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Figure 5: average bus cycles per bus *transaction* per scheme.

    Dragon's transactions are the cheapest (single-word updates), which is
    why fixed per-transaction overheads hurt it the most (Section 5.1).
    """
    bus = _default_bus(bus)
    schemes = tuple(schemes or comparison.protocols)
    return {
        comparison.results[s][comparison.traces[0]].protocol_label: (
            comparison.average_cycles_per_transaction(s, bus)
        )
        for s in schemes
    }


def figure_energy(
    comparison: ComparisonResult,
    bus: Optional[BusCostModel] = None,
    schemes: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Average energy per reference (nJ) per scheme — the energy companion
    to Figure 2's cycle bars.

    Requires a bus model with an energy axis (both bundled
    characterizations carry one); raises :class:`ValueError` otherwise.
    """
    bus = _default_bus(bus)
    if not bus.has_energy:
        raise ValueError(
            f"bus model {bus.name!r} carries no energy axis; build it from "
            "a characterization with an [energy_nj] section"
        )
    schemes = tuple(schemes or comparison.protocols)
    series: Dict[str, float] = {}
    for scheme in schemes:
        energy = comparison.average_energy(scheme, bus)
        assert energy is not None  # has_energy checked above
        label = comparison.results[scheme][comparison.traces[0]].protocol_label
        series[label] = energy
    return series
