"""Cache-line states used by the coherence protocols.

The paper's protocols need only a small state vocabulary (Section 1): a
cached copy is *invalid*, *valid/clean* (possibly shared), or *dirty*
(exclusive).  The update-based Dragon protocol refines "dirty" into
owner-supplies states; the Berkeley ownership protocol distinguishes owned
shared from owned exclusive.  A single enum covers all of them so generic
machinery (caches, invariant checkers) can be shared.
"""

from __future__ import annotations

import enum

__all__ = ["LineState"]


class LineState(enum.Enum):
    """State of one block in one cache."""

    INVALID = "invalid"
    #: valid, memory consistent, possibly in other caches too
    CLEAN = "clean"
    #: modified, this cache holds the only copy; memory is stale
    DIRTY = "dirty"
    #: Dragon/Berkeley: modified and shared; this cache owns (supplies) it
    SHARED_DIRTY = "shared-dirty"

    @property
    def is_valid(self) -> bool:
        return self is not LineState.INVALID

    @property
    def is_modified(self) -> bool:
        """True when this copy differs from main memory."""
        return self in (LineState.DIRTY, LineState.SHARED_DIRTY)
