"""Bus timing models (paper Tables 1 and 2).

Table 1 gives the fundamental operation timings; Table 2 derives per-event
bus-cycle costs for two organisations of widely diverse complexity:

* a **pipelined** bus with separate address and data paths, which is not
  held during memory/directory access, and
* a **non-pipelined** bus that multiplexes address and data and must be held
  during the access waits.

The cost vocabulary (:class:`BusOp`) is the set of primitive bus actions the
protocols emit; :class:`BusCostModel` assigns each a cycle count.  Key
conventions from Section 4.3 that the models encode:

* a memory (or remote cache) block access is "1 cycle to send the address
  and 4 cycles to get 4 words of data back" plus, on the non-pipelined bus,
  the access wait;
* on a write-back the requesting cache *also receives the data* (snarfing),
  and those data cycles are counted under the write-back category — so a
  miss satisfied by a remote dirty block costs only the request cycle(s)
  plus the 4-cycle write-back;
* directory accesses are overlapped with memory accesses when possible and
  then cost nothing extra;
* a broadcast invalidate is assumed to take 1 cycle like a directed one for
  the headline comparison (Section 4.3); the Section 6 models make its cost
  ``b`` a parameter.

The numbers themselves live in versioned characterization files (see
:mod:`repro.characterization` and ``docs/characterization.md``):
:func:`pipelined_bus` and :func:`nonpipelined_bus` with default arguments
load the bundled ``pipelined`` / ``non-pipelined`` characterizations — which
also carry per-op energy — while non-default arguments fall back to the
parametric derivations :func:`pipelined_cycles` / :func:`nonpipelined_cycles`
(``tools/validate_characterization.py`` asserts the bundled files and the
derivations agree bit-for-bit).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..trace.record import WORDS_PER_BLOCK

__all__ = [
    "BusOp",
    "BusTiming",
    "BusCostModel",
    "UnknownBusOpError",
    "pipelined_bus",
    "pipelined_cycles",
    "nonpipelined_bus",
    "nonpipelined_cycles",
    "standard_buses",
    "TABLE5_CATEGORY",
    "Table5Category",
]


class BusOp(enum.Enum):
    """Primitive bus actions a protocol can charge for one reference."""

    #: full block read supplied by main memory
    MEM_ACCESS = "mem_access"
    #: full block supplied directly by a remote cache (Dragon, Berkeley)
    CACHE_SUPPLY = "cache_supply"
    #: request cycle(s) that make a remote cache flush a dirty block
    FLUSH_REQUEST = "flush_request"
    #: 4-word dirty-block write-back to memory (requester snarfs the data)
    WRITE_BACK = "write_back"
    #: one directed invalidation message
    INVALIDATE = "invalidate"
    #: one broadcast invalidation
    BROADCAST_INVALIDATE = "broadcast_invalidate"
    #: single-word write through to memory (WTI)
    WRITE_THROUGH = "write_through"
    #: single-word update of remote cached copies (Dragon)
    WRITE_UPDATE = "write_update"
    #: directory check that cannot overlap a memory access
    DIR_CHECK = "dir_check"
    #: directory check overlapped with a memory access (free)
    DIR_CHECK_OVERLAPPED = "dir_check_overlapped"
    #: Yen & Fu single-bit maintenance message to one cache
    SINGLE_BIT_UPDATE = "single_bit_update"


class Table5Category(enum.Enum):
    """Row categories of the paper's Table 5 cost breakdown."""

    MEM_ACCESS = "mem access"
    INVALIDATE = "invalidate"
    WRITE_BACK = "write-back"
    WT_OR_WUP = "wt or wup"
    DIR_ACCESS = "dir access"


#: How each primitive op is reported in the Table 5 breakdown.
TABLE5_CATEGORY: Mapping[BusOp, Table5Category] = {
    BusOp.MEM_ACCESS: Table5Category.MEM_ACCESS,
    BusOp.CACHE_SUPPLY: Table5Category.MEM_ACCESS,
    BusOp.FLUSH_REQUEST: Table5Category.MEM_ACCESS,
    BusOp.WRITE_BACK: Table5Category.WRITE_BACK,
    BusOp.INVALIDATE: Table5Category.INVALIDATE,
    BusOp.BROADCAST_INVALIDATE: Table5Category.INVALIDATE,
    BusOp.WRITE_THROUGH: Table5Category.WT_OR_WUP,
    BusOp.WRITE_UPDATE: Table5Category.WT_OR_WUP,
    BusOp.DIR_CHECK: Table5Category.DIR_ACCESS,
    BusOp.DIR_CHECK_OVERLAPPED: Table5Category.DIR_ACCESS,
    BusOp.SINGLE_BIT_UPDATE: Table5Category.INVALIDATE,
}


@dataclass(frozen=True)
class BusTiming:
    """Fundamental bus operation timings (paper Table 1), in bus cycles."""

    transfer_word: int = 1
    invalidate: int = 1
    wait_for_directory: int = 2
    wait_for_memory: int = 2
    wait_for_cache: int = 1

    def rows(self) -> Dict[str, int]:
        """Table 1 as printable rows."""
        return {
            "Transfer 1 data word": self.transfer_word,
            "Invalidate": self.invalidate,
            "Wait for Directory": self.wait_for_directory,
            "Wait for Memory": self.wait_for_memory,
            "Wait for Cache": self.wait_for_cache,
        }


class UnknownBusOpError(ValueError):
    """A cost model was asked to price a bus op it does not characterize.

    Raised instead of a bare ``KeyError`` so the message can name the op,
    the model, and the ops the model does know — a protocol emitting an op
    a (possibly user-supplied) characterization lacks is a configuration
    error the user must be able to diagnose from one line.  The CLI maps it
    to a clean exit code 2.
    """

    def __init__(self, model: str, op: BusOp, known: Mapping[BusOp, float]):
        self.model = model
        self.op = op
        self.known_ops = tuple(sorted(o.value for o in known))
        super().__init__(
            f"bus cost model {model!r} has no cost for op {op.value!r}; "
            f"known ops: {', '.join(self.known_ops) or '(none)'}"
        )


@dataclass(frozen=True)
class BusCostModel:
    """Cycle (and optionally energy) cost of each primitive bus op.

    ``energy_nj`` maps ops to energy in nanojoules; it is empty for purely
    cycle-accurate models (parametric derivations, Section 6 network
    models) and populated when the model comes from a characterization file
    with an ``[energy_nj]`` section.
    """

    name: str
    cycles: Mapping[BusOp, float]
    timing: BusTiming = field(default_factory=BusTiming)
    energy_nj: Mapping[BusOp, float] = field(default_factory=dict)

    def cost_of(self, op: BusOp) -> float:
        try:
            return self.cycles[op]
        except KeyError:
            raise UnknownBusOpError(self.name, op, self.cycles) from None

    @property
    def has_energy(self) -> bool:
        """Whether this model carries the energy axis."""
        return bool(self.energy_nj)

    def energy_of(self, op: BusOp) -> float:
        """Energy of one occurrence of ``op`` in nanojoules."""
        try:
            return self.energy_nj[op]
        except KeyError:
            raise UnknownBusOpError(
                f"{self.name} (energy axis)", op, self.energy_nj
            ) from None

    def total_cycles(self, op_counts: Mapping[BusOp, float]) -> float:
        """Weight op counts by this model's costs."""
        return sum(self.cost_of(op) * count for op, count in op_counts.items())

    def total_energy_nj(self, op_counts: Mapping[BusOp, float]) -> float:
        """Weight op counts by this model's per-op energy."""
        return sum(
            self.energy_of(op) * count for op, count in op_counts.items()
        )

    def with_broadcast_cost(self, b: float) -> "BusCostModel":
        """A copy where a broadcast invalidate costs ``b`` cycles (Section 6)."""
        cycles = dict(self.cycles)
        cycles[BusOp.BROADCAST_INVALIDATE] = b
        return BusCostModel(
            name=f"{self.name} (b={b:g})",
            cycles=cycles,
            timing=self.timing,
            energy_nj=self.energy_nj,
        )

    def table2_rows(self) -> Dict[str, float]:
        """This model's column of the paper's Table 2 cost summary."""
        return {
            "Memory access": self.cost_of(BusOp.MEM_ACCESS),
            "Cache access": self.cost_of(BusOp.FLUSH_REQUEST)
            + self.cost_of(BusOp.WRITE_BACK),
            "Write-back": self.cost_of(BusOp.WRITE_BACK),
            "Write-through / update": self.cost_of(BusOp.WRITE_THROUGH),
            "Directory check": self.cost_of(BusOp.DIR_CHECK),
            "Invalidate": self.cost_of(BusOp.INVALIDATE),
        }


def pipelined_cycles(
    timing: BusTiming = BusTiming(),
    words_per_block: int = WORDS_PER_BLOCK,
    broadcast_cycles: float = 1.0,
) -> Dict[BusOp, float]:
    """Derive the pipelined bus's per-op cycle costs from Table 1 timings.

    Memory access: 1 address cycle + one cycle per data word.  Directory
    checks cost one address cycle when standalone and nothing when overlapped
    with a memory access.  Write-throughs and updates are single cycles.
    """
    data = timing.transfer_word * words_per_block
    return {
        BusOp.MEM_ACCESS: 1 + data,
        BusOp.CACHE_SUPPLY: 1 + data,
        BusOp.FLUSH_REQUEST: 1,
        BusOp.WRITE_BACK: data,
        BusOp.INVALIDATE: timing.invalidate,
        BusOp.BROADCAST_INVALIDATE: broadcast_cycles,
        BusOp.WRITE_THROUGH: 1,
        BusOp.WRITE_UPDATE: 1,
        BusOp.DIR_CHECK: 1,
        BusOp.DIR_CHECK_OVERLAPPED: 0,
        BusOp.SINGLE_BIT_UPDATE: 1,
    }


def nonpipelined_cycles(
    timing: BusTiming = BusTiming(),
    words_per_block: int = WORDS_PER_BLOCK,
    broadcast_cycles: float = 1.0,
) -> Dict[BusOp, float]:
    """Derive the non-pipelined bus's per-op cycle costs from Table 1.

    Memory access: 1 + wait-for-memory + data transfer = 7 cycles; a remote
    cache access waits one cycle less (6).  A standalone directory check is
    1 + wait-for-directory = 3 cycles; write-through/update cost an address
    cycle plus a data cycle (2).
    """
    data = timing.transfer_word * words_per_block
    return {
        BusOp.MEM_ACCESS: 1 + timing.wait_for_memory + data,
        BusOp.CACHE_SUPPLY: 1 + timing.wait_for_cache + data,
        BusOp.FLUSH_REQUEST: 1 + timing.wait_for_cache,
        BusOp.WRITE_BACK: data,
        BusOp.INVALIDATE: timing.invalidate,
        BusOp.BROADCAST_INVALIDATE: broadcast_cycles,
        BusOp.WRITE_THROUGH: 1 + timing.transfer_word,
        BusOp.WRITE_UPDATE: 1 + timing.transfer_word,
        BusOp.DIR_CHECK: 1 + timing.wait_for_directory,
        BusOp.DIR_CHECK_OVERLAPPED: 0,
        BusOp.SINGLE_BIT_UPDATE: 1,
    }


def _is_default(
    timing: Optional[BusTiming], words_per_block: int, broadcast_cycles: float
) -> bool:
    return (
        timing is None
        and words_per_block == WORDS_PER_BLOCK
        and broadcast_cycles == 1.0
    )


def pipelined_bus(
    timing: Optional[BusTiming] = None,
    words_per_block: int = WORDS_PER_BLOCK,
    broadcast_cycles: float = 1.0,
) -> BusCostModel:
    """The sophisticated bus: separate address/data paths, not held on waits.

    With default arguments this loads the bundled ``pipelined``
    characterization file (cycle costs *and* per-op energy); non-default
    arguments derive the cycles parametrically via
    :func:`pipelined_cycles` — bit-identical for the paper's defaults.
    """
    if _is_default(timing, words_per_block, broadcast_cycles):
        from ..characterization import builtin_bus_model

        return builtin_bus_model("pipelined")
    timing = BusTiming() if timing is None else timing
    return BusCostModel(
        name="pipelined",
        cycles=pipelined_cycles(timing, words_per_block, broadcast_cycles),
        timing=timing,
    )


def nonpipelined_bus(
    timing: Optional[BusTiming] = None,
    words_per_block: int = WORDS_PER_BLOCK,
    broadcast_cycles: float = 1.0,
) -> BusCostModel:
    """The simple bus: multiplexed address/data, held during access waits.

    With default arguments this loads the bundled ``non-pipelined``
    characterization file; non-default arguments derive the cycles
    parametrically via :func:`nonpipelined_cycles`.
    """
    if _is_default(timing, words_per_block, broadcast_cycles):
        from ..characterization import builtin_bus_model

        return builtin_bus_model("non-pipelined")
    timing = BusTiming() if timing is None else timing
    return BusCostModel(
        name="non-pipelined",
        cycles=nonpipelined_cycles(timing, words_per_block, broadcast_cycles),
        timing=timing,
    )


def standard_buses() -> Dict[str, BusCostModel]:
    """Both Table 2 bus models keyed by name."""
    return {"pipelined": pipelined_bus(), "non-pipelined": nonpipelined_bus()}
