"""Metrics primitives: counters, gauges, wall-time timers, histograms.

A :class:`MetricsRegistry` is a named collection of instruments that any
layer can tally into and any consumer can snapshot as plain JSON-able data
(:meth:`MetricsRegistry.as_dict`, ``--metrics-json`` in the CLI).  The
sweep runner keeps one registry per sweep so reports are self-contained —
including the cost-accounting split between ``sweep.simulated`` and
``sweep.repriced`` (cells served by re-weighting another cell's counters
under a different hardware characterization); the result cache defaults to
the process-wide registry (:func:`get_registry`) so corruption events are
visible no matter which sweep tripped them.

Instruments are deliberately tiny pure-Python objects — a counter is one
integer — so tallying in hot-ish paths (per sweep cell, per cache lookup)
costs nothing worth measuring.  Per-*reference* instrumentation does not go
through the registry at all; that is the probe API's job
(:mod:`repro.obs.probe`), which is compiled out of the hot loop entirely
when no probe is attached.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "get_registry",
]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Timer:
    """Accumulated wall time over any number of timed sections."""

    __slots__ = ("name", "total_seconds", "count")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total_seconds = 0.0
        self.count = 0

    def add(self, seconds: float) -> None:
        """Fold an externally measured duration in (e.g. from a worker)."""
        self.total_seconds += seconds
        self.count += 1

    @contextmanager
    def time(self) -> Iterator["Timer"]:
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add(time.perf_counter() - start)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "total_s": self.total_seconds,
            "count": self.count,
            "mean_s": self.mean_seconds,
        }


class Histogram:
    """Streaming summary (count/sum/min/max/mean) of observed values."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Optional[float]]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named instruments, created on first use, snapshottable as JSON."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create accessors ----------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def timer(self, name: str) -> Timer:
        instrument = self._timers.get(name)
        if instrument is None:
            instrument = self._timers[name] = Timer(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # -- snapshots -------------------------------------------------------------

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """The whole registry as plain JSON-able data."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "timers": {
                name: timer.as_dict()
                for name, timer in sorted(self._timers.items())
            },
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def write_json(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, timers={len(self._timers)}, "
            f"histograms={len(self._histograms)})"
        )


#: Process-wide default registry for layers with no better home (the result
#: cache's corruption counter, ad-hoc instrumentation in scripts).
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT
