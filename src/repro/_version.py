"""Single source of the package version.

Lives in its own leaf module so layers that must not import the package
root (e.g. :mod:`repro.runner.spec`, which folds the version into the
on-disk result-cache key) can read it without an import cycle.  Keep in
sync with ``pyproject.toml``.
"""

__version__ = "1.1.0"
