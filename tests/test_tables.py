"""Unit tests for the table builders (paper Tables 1-5)."""

import pytest

from conftest import trace_of
from repro.analysis.tables import (
    TABLE4_ROWS,
    render_table1,
    render_table2,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.core.comparison import run_comparison
from repro.interconnect.bus import BusTiming, Table5Category, nonpipelined_bus
from repro.trace.stats import collect_stats


@pytest.fixture(scope="module")
def comparison():
    trace = trace_of(
        [(0, "i", 999)]
        + [(0, "r", 0), (1, "r", 0), (0, "w", 0), (1, "r", 0), (2, "w", 16)]
        + [(3, "r", 32), (3, "w", 32), (0, "r", 32)]
    )
    factories = {"T": lambda: iter(list(trace))}
    return run_comparison(
        ("dir1nb", "wti", "dir0b", "dragon"), factories, n_caches=4
    )


class TestTable1And2:
    def test_table1_rows(self):
        rows = table1(BusTiming())
        assert rows["Transfer 1 data word"] == 1
        assert len(rows) == 5

    def test_render_table1(self):
        text = render_table1()
        assert "Wait for Memory" in text

    def test_table2_columns(self):
        rows = table2()
        assert rows["Memory access"]["Pipelined Bus"] == 5
        assert rows["Memory access"]["Non-Pipelined Bus"] == 7

    def test_render_table2(self):
        assert "Directory check" in render_table2()


class TestTable3:
    def test_rows_in_thousands(self):
        trace = trace_of([(0, "r", 0)] * 2000)
        stats = collect_stats(trace, name="X")
        rows = table3([stats])
        assert rows[0]["Refs"] == 2.0


class TestTable4:
    def test_all_rows_present(self, comparison):
        result = table4(comparison)
        assert set(result.values) == set(TABLE4_ROWS)

    def test_read_rows_sum(self, comparison):
        result = table4(comparison)
        for scheme in result.schemes:
            total = (
                result.value("rd-hit", scheme)
                + result.value("rd-miss(rm)", scheme)
                + result.value("rm-first-ref", scheme)
            )
            assert total == pytest.approx(result.value("read", scheme))

    def test_reads_and_writes_identical_across_schemes(self, comparison):
        # The reference mix is a property of the trace, not the protocol.
        result = table4(comparison)
        reads = {result.value("read", s) for s in result.schemes}
        assert len({round(r, 9) for r in reads}) == 1

    def test_render_suppresses_paper_blanks(self, comparison):
        text = table4(comparison).render()
        lines = {
            line.split()[0]: line for line in text.splitlines() if line.strip()
        }
        # The WTI column of rm-blk-cln is '-' in the paper.
        assert "-" in lines["rm-blk-cln"]

    def test_render_has_header_and_all_rows(self, comparison):
        text = table4(comparison).render()
        for row in TABLE4_ROWS:
            assert row in text


class TestTable5:
    def test_cumulative_equals_average_cycles(self, comparison):
        from repro.interconnect.bus import pipelined_bus

        result = table5(comparison)
        bus = pipelined_bus()
        for scheme in result.schemes:
            assert result.cumulative(scheme) == pytest.approx(
                comparison.average_cycles(scheme, bus)
            )

    def test_wti_cycles_dominated_by_write_throughs(self, comparison):
        result = table5(comparison)
        wti = result.by_category["wti"]
        assert wti[Table5Category.WT_OR_WUP] > 0

    def test_dir1nb_never_pays_directory_cycles(self, comparison):
        # "directory accesses can always be overlapped with memory accesses
        # in Dir1NB" (Table 5 note).
        result = table5(comparison)
        assert result.by_category["dir1nb"][Table5Category.DIR_ACCESS] == 0

    def test_alternate_bus_model(self, comparison):
        result = table5(comparison, bus=nonpipelined_bus())
        assert result.bus == "non-pipelined"

    def test_render(self, comparison):
        text = table5(comparison).render()
        assert "cumulative" in text
        assert "mem access" in text
