"""Timing-accurate validation of the paper's analytic traffic arguments.

The paper prices event frequencies after the fact and flags two things it
cannot capture: bus contention and timing-dependent interleaving.  The
timed simulator measures both.  This bench

1. validates the coherence of every core scheme under the *timed* schedule
   (the oracle runs inside the comparison), and
2. checks that the timed bus utilisation and the throughput degradation
   behave the way the Section 5.1 q-model and the contention model predict:
   more expensive schemes stall processors more, and a larger q stretches
   every transaction.
"""

from conftest import SCALE
from repro.core.timing import simulate_timed
from repro.trace import materialize, standard_trace, take

from repro.protocols import create_protocol

_REFS = 60_000


def _trace():
    return materialize(take(standard_trace("POPS", scale=SCALE), _REFS))


def test_timing_validation(benchmark, pipe_bus, save_result):
    trace = _trace()

    def run():
        results = {}
        for scheme in ("dir1nb", "wti", "dir0b", "dragon"):
            results[scheme] = simulate_timed(
                create_protocol(scheme, 4), iter(trace), pipe_bus, q_overhead=1
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Timed execution on one arbitrated bus "
        f"({_REFS} POPS references, q=1):",
        f"  {'scheme':<8} {'cycles':>8} {'bus util':>9} {'proc util':>10} "
        f"{'refs/cycle':>11}",
    ]
    for scheme, result in results.items():
        lines.append(
            f"  {scheme:<8} {result.total_cycles:>8} "
            f"{result.bus_utilization:>9.3f} "
            f"{result.processor_utilization:>10.3f} "
            f"{result.references_per_cycle:>11.3f}"
        )
    save_result("timing_validation", "\n".join(lines))

    # Cheaper schemes finish the same work in fewer cycles.
    assert results["dragon"].total_cycles < results["wti"].total_cycles
    assert results["dir0b"].total_cycles < results["dir1nb"].total_cycles
    # Dir1NB saturates the bus hardest (its block moves dominate).
    assert (
        results["dir1nb"].bus_utilization > results["dir0b"].bus_utilization
    )
    # Nobody exceeds the physical envelope.
    for result in results.values():
        assert 0.0 < result.bus_utilization <= 1.0
        assert 0.0 < result.processor_utilization <= 1.0


def test_timing_q_overhead_effect(benchmark, pipe_bus, save_result):
    """Section 5.1 made real: grow q and watch the completion time."""
    trace = _trace()

    def run():
        return {
            q: simulate_timed(
                create_protocol("dragon", 4), iter(trace), pipe_bus, q_overhead=q
            ).total_cycles
            for q in (0, 1, 2, 4)
        }

    cycles_by_q = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Dragon completion time vs per-transaction overhead q:"]
    for q, cycles in cycles_by_q.items():
        lines.append(f"  q={q}: {cycles} cycles")
    save_result("timing_q_overhead", "\n".join(lines))
    values = list(cycles_by_q.values())
    assert values == sorted(values)  # q only ever slows things down
    # Dragon's many transactions make it sensitive to q (Section 5.1).
    assert cycles_by_q[4] > cycles_by_q[0] * 1.01
