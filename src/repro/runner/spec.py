"""Sweep specifications: one cell of the experiment grid, hashable on disk.

A :class:`RunSpec` names everything that determines a simulation's outcome —
protocol, trace, scale, seed, cache count, block size, sharing model — and
nothing that doesn't (worker count, cache directory, progress hooks).  Two
consequences fall out of that discipline:

* a spec can be shipped to a worker process and executed there with no
  shared state, and
* :meth:`RunSpec.cache_key` is a *complete* description of the result, so
  the on-disk cache can safely replay it.

The cache key hashes the spec's simulation parameters **plus the fully
resolved workload profile** (every calibrated field, including the seed and
scaled region sizes).  Recalibrating a workload therefore invalidates cached
results automatically; only genuinely identical runs hit.  A schema version
is folded in so changes to the counting semantics can retire stale caches.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.simulator import SimulationResult, simulate
from ..protocols.base import CoherenceProtocol
from ..protocols.registry import PAPER_CORE_SCHEMES, PROTOCOLS, create_protocol
from ..trace.record import DEFAULT_BLOCK_SIZE, TraceRecord
from ..trace.stream import SharingModel
from ..trace.synthetic import SyntheticWorkload, WorkloadProfile
from ..trace.workloads import DEFAULT_SCALE, standard_profile, standard_trace_names

__all__ = ["CACHE_SCHEMA_VERSION", "RunSpec", "sweep_grid"]

#: Bump when counting semantics or the result format change, so previously
#: cached results stop matching.
CACHE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class RunSpec:
    """One cell of a sweep: (protocol, trace, scale, config, seed).

    ``seed=None`` uses the trace's calibrated default seed; an explicit
    seed re-seeds the workload (the sweep's variance axis).
    """

    protocol: str
    trace: str
    scale: float = DEFAULT_SCALE
    n_caches: int = 4
    block_size: int = DEFAULT_BLOCK_SIZE
    sharing_model: SharingModel = SharingModel.PROCESS
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "protocol", self.protocol.lower())
        object.__setattr__(self, "trace", self.trace.upper())
        if self.protocol not in PROTOCOLS:
            known = ", ".join(sorted(PROTOCOLS))
            raise ValueError(f"unknown protocol {self.protocol!r}; known: {known}")
        if self.trace not in standard_trace_names():
            known = ", ".join(standard_trace_names())
            raise ValueError(f"unknown trace {self.trace!r}; known: {known}")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.n_caches <= 0:
            raise ValueError(f"n_caches must be positive, got {self.n_caches}")
        if self.block_size <= 0:
            raise ValueError(f"block_size must be positive, got {self.block_size}")

    # -- construction of the pieces -----------------------------------------

    def profile(self) -> WorkloadProfile:
        """The fully resolved workload profile this spec simulates."""
        return standard_profile(self.trace, scale=self.scale, seed=self.seed)

    def build_trace(self) -> Iterable[TraceRecord]:
        return SyntheticWorkload(self.profile()).records()

    def build_protocol(self) -> CoherenceProtocol:
        return create_protocol(self.protocol, self.n_caches)

    # -- identity ------------------------------------------------------------

    def cache_key(self) -> str:
        """Stable content hash identifying this spec's result on disk."""
        token = "|".join(
            (
                f"schema={CACHE_SCHEMA_VERSION}",
                f"protocol={self.protocol}",
                f"n_caches={self.n_caches}",
                f"block_size={self.block_size}",
                f"sharing={self.sharing_model.value}",
                f"profile={self.profile()!r}",
            )
        )
        return hashlib.sha256(token.encode("utf-8")).hexdigest()[:40]

    # -- execution -----------------------------------------------------------

    def run(self) -> SimulationResult:
        """Simulate this cell from scratch (no cache involved)."""
        return simulate(
            self.build_protocol(),
            self.build_trace(),
            trace_name=self.trace,
            block_size=self.block_size,
            sharing_model=self.sharing_model,
        )


def sweep_grid(
    protocols: Sequence[str] = PAPER_CORE_SCHEMES,
    traces: Optional[Sequence[str]] = None,
    scale: float = DEFAULT_SCALE,
    n_caches: int = 4,
    block_sizes: Sequence[int] = (DEFAULT_BLOCK_SIZE,),
    sharing_models: Sequence[SharingModel] = (SharingModel.PROCESS,),
    seeds: Sequence[Optional[int]] = (None,),
) -> List[RunSpec]:
    """The cross product of every sweep axis, in deterministic order.

    Axis order (outer to inner): protocol, trace, block size, sharing
    model, seed — so results group by protocol the way the paper's tables
    present them.
    """
    if not protocols:
        raise ValueError("at least one protocol is required")
    trace_names: Tuple[str, ...] = tuple(traces or standard_trace_names())
    return [
        RunSpec(
            protocol=protocol,
            trace=trace,
            scale=scale,
            n_caches=n_caches,
            block_size=block_size,
            sharing_model=sharing_model,
            seed=seed,
        )
        for protocol in protocols
        for trace in trace_names
        for block_size in block_sizes
        for sharing_model in sharing_models
        for seed in seeds
    ]
