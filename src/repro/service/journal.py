"""The service journal: a crash-safe record of every job state transition.

The sweep journal (:mod:`repro.resilience.journal`) makes one *sweep*
resumable; this journal makes the *service* resumable.  Every job
lifecycle transition is appended — durably, one fsynced line at a time —
to ``<state-dir>/service.journal.jsonl``::

    {"event": "job", "id": "abc", "state": "submitted", "sweep_key": ...,
     "client": ..., "idempotency_key": ..., "request": {...},
     "cells": N, "submitted_at": ..., "ts": ...}
    {"event": "job", "id": "abc", "state": "queued", "ts": ...}
    {"event": "job", "id": "abc", "state": "running", "pid": 123,
     "pid_start": "...", "started_at": ..., "ts": ...}
    {"event": "job", "id": "abc", "state": "finished", "finished_at": ...}

The ``submitted`` record carries the validated request payload verbatim,
so a restarted server can re-parse it and re-queue the job; ``running``
records the child's pid **and its kernel start time**, so recovery can
tell an orphaned sweep child from an unrelated process that reused the
pid.  Appends and loads share the torn-tail-tolerant primitives of the
sweep journal (:func:`~repro.resilience.journal.append_jsonl` /
:func:`~repro.resilience.journal.load_jsonl`): a SIGKILL'd server leaves
at most one torn final line, and :meth:`ServiceJournal.load` merges the
surviving records per job, field-wise, in append order — the last intact
transition wins, and earlier fields (the request payload, timestamps)
are retained.

Journal writes are **best-effort at the call site**: :meth:`record`
returns ``False`` and counts ``service.journal_errors`` instead of
raising, because a full disk must degrade the service (visible in
``/readyz``), not kill it.  Fault injection for all of this lives in the
plan's service seam (:data:`~repro.resilience.faults.SERVICE_KINDS`):
``journal-error`` forces that OSError path, ``journal-torn`` writes the
half-line a mid-append kill would leave, and ``serve-kill`` SIGKILLs the
process right *after* an append — a deterministic crash point the
recovery tests restart from.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Union

from ..obs.log import fields, get_logger
from ..obs.metrics import MetricsRegistry, get_registry
from ..resilience.faults import FaultPlan
from ..resilience.journal import append_jsonl, load_jsonl

__all__ = ["SERVICE_JOURNAL_NAME", "ServiceJournal", "pid_start_time"]

logger = get_logger("service.journal")

#: File name of the service journal inside the state directory.
SERVICE_JOURNAL_NAME = "service.journal.jsonl"


def pid_start_time(pid: int) -> Optional[str]:
    """The kernel start time of ``pid``, or None when unknowable.

    Field 22 of ``/proc/<pid>/stat`` (clock ticks since boot) — a value
    that, together with the pid, identifies one process incarnation.
    Recovery records it when a job child starts and compares it before
    killing an orphan, so a recycled pid belonging to some innocent
    process is never signalled.  Returns None off Linux or when the
    process is already gone; callers treat None as "do not kill".
    """
    try:
        stat = Path(f"/proc/{pid}/stat").read_text()
        # comm (field 2) may contain spaces/parens; parse after the last ')'.
        return stat.rsplit(")", 1)[1].split()[19]
    except (OSError, IndexError):
        return None


class ServiceJournal:
    """Append-only JSONL record of the job table's state transitions."""

    def __init__(
        self,
        path: Union[str, Path],
        plan: Optional[FaultPlan] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.plan = plan
        self._registry = registry
        self._lock = threading.Lock()
        self._appends: Dict[str, int] = {}

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def exists(self) -> bool:
        return self.path.exists()

    # -- writing ---------------------------------------------------------------

    def record(self, job_id: str, state: str, **extra: object) -> bool:
        """Durably append one transition; False (never raise) on OSError.

        A failed append counts ``service.journal_errors`` and degrades
        the service's readiness rather than failing the job — the job
        still runs; only its crash-recoverability is weakened until the
        disk recovers.
        """
        record = {"event": "job", "id": job_id, "state": state, "ts": time.time()}
        record.update(extra)
        with self._lock:
            count = self._appends.get(state, 0) + 1
            self._appends[state] = count
        fault = (
            self.plan.service_fault(state, count) if self.plan is not None else None
        )
        try:
            if fault is not None and fault.kind == "journal-error":
                raise OSError(f"injected journal error: {fault.message}")
            if fault is not None and fault.kind == "journal-torn":
                self._append_torn(record)
            else:
                append_jsonl(self.path, record)
        except OSError as error:
            self.registry.counter("service.journal_errors").inc()
            logger.warning(
                "service journal append failed; continuing degraded",
                extra=fields(
                    path=str(self.path), job=job_id, state=state, error=str(error)
                ),
            )
            return False
        if fault is not None and fault.kind == "serve-kill":
            logger.warning(
                "injected serve-kill: SIGKILLing the service process",
                extra=fields(job=job_id, state=state),
            )
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover
        return True

    def _append_torn(self, record: dict) -> None:
        """Append the front half of the record, no newline — a torn tail."""
        line = json.dumps(record, sort_keys=True, default=str)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line[: max(1, len(line) // 2)].encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- reading ---------------------------------------------------------------

    def load(self) -> Dict[str, dict]:
        """Merged per-job records, in first-submission order of the file.

        Records for the same job id are folded field-wise in append
        order: the final ``state`` is the last intact transition, while
        fields only the ``submitted`` record carries (the request
        payload, the idempotency key) survive from the first.  Torn lines
        are counted and skipped — a job whose *submitted* line was torn
        simply recovers as unparseable (no request to replay), never as
        an exception.
        """
        jobs: Dict[str, dict] = {}
        records, torn = load_jsonl(self.path)
        for record in records:
            if record.get("event") != "job":
                continue
            job_id = record.get("id")
            if not isinstance(job_id, str) or not isinstance(
                record.get("state"), str
            ):
                continue
            jobs.setdefault(job_id, {}).update(record)
        if torn:
            logger.warning(
                "service journal has torn lines; skipped",
                extra=fields(path=str(self.path), torn=torn),
            )
        return jobs

    def compact(self, jobs: Dict[str, dict]) -> None:
        """Atomically rewrite the journal as one merged record per job.

        Called by recovery after it decides which jobs are still live —
        expired and unparseable entries fall out, so the journal stays
        proportional to the job table rather than to service uptime.
        Only safe while nothing else is appending (recovery runs before
        submissions are admitted and before any recovered job is
        re-queued).
        """
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            with tmp.open("w", encoding="utf-8") as handle:
                for record in jobs.values():
                    handle.write(
                        json.dumps(record, sort_keys=True, default=str) + "\n"
                    )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except OSError as error:
            self.registry.counter("service.journal_errors").inc()
            logger.warning(
                "service journal compaction failed; keeping the long journal",
                extra=fields(path=str(self.path), error=str(error)),
            )
            try:
                tmp.unlink()
            except OSError:
                pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ServiceJournal({str(self.path)!r})"
