"""Unit tests for the Yen & Fu single-bit refinement."""

import random

import pytest

from conftest import run_ops
from repro.interconnect.bus import BusOp, pipelined_bus
from repro.protocols.directory.dirnnb import DirnNB
from repro.protocols.directory.yenfu import YenFu
from repro.protocols.events import Event
from repro.trace.record import AccessType


@pytest.fixture
def proto():
    return YenFu(4)


class TestSingleBit:
    def test_sole_holder_writes_without_directory_check(self, proto):
        outcomes = run_ops(proto, [(0, "r", 5), (0, "w", 5)])
        hit = outcomes[1]
        assert hit.event is Event.WH_BLK_CLEAN
        assert hit.ops == ()
        assert proto.saved_directory_checks == 1

    def test_shared_holder_still_checks_directory(self, proto):
        outcomes = run_ops(proto, [(0, "r", 5), (1, "r", 5), (0, "w", 5)])
        hit = outcomes[2]
        assert hit.op_count(BusOp.DIR_CHECK) == 1

    def test_second_sharer_clears_single_bit_with_a_message(self, proto):
        outcomes = run_ops(proto, [(0, "r", 5), (1, "r", 5)])
        second = outcomes[1]
        assert second.op_count(BusOp.SINGLE_BIT_UPDATE) == 1

    def test_flush_request_carries_the_news_for_free(self, proto):
        # When the sole holder had the block dirty, the flush request it
        # receives doubles as the single-bit clear.
        outcomes = run_ops(proto, [(0, "w", 5), (1, "r", 5)])
        second = outcomes[1]
        assert second.op_count(BusOp.SINGLE_BIT_UPDATE) == 0

    def test_writer_regains_single_status_after_invalidation(self, proto):
        outcomes = run_ops(
            proto, [(0, "r", 5), (1, "r", 5), (0, "w", 5), (0, "r", 5), (0, "w", 5)]
        )
        # After invalidating cache 1, cache 0 is sole again: the final write
        # (to its now-clean copy after... it is dirty, so use a fresh cycle).
        assert outcomes[4].event is Event.WH_BLK_DIRTY

    def test_single_bit_saving_after_reclaim(self, proto):
        run_ops(proto, [(0, "r", 5), (1, "r", 5), (0, "w", 5)])  # reclaim
        run_ops(proto, [(2, "w", 6), (2, "r", 6)])  # unrelated
        # Cache 0 is sole dirty owner of 5; read by 1 flushes it, then 0's
        # write is a clean hit but no longer single -> directory check.
        outcomes = run_ops(proto, [(1, "r", 5), (0, "w", 5)])
        assert outcomes[1].op_count(BusOp.DIR_CHECK) == 1


class TestPaperClaim:
    def test_saves_directory_accesses_but_not_bus_cycles(self):
        """Yen & Fu "saves central directory accesses, but does not reduce
        the number of bus accesses" versus Censier & Feautrier."""
        rng = random.Random(101)
        ops = [
            (
                rng.randrange(4),
                rng.choice((AccessType.READ, AccessType.WRITE)),
                rng.randrange(30),
            )
            for _ in range(6000)
        ]
        yenfu, dirnnb = YenFu(4), DirnNB(4)
        bus = pipelined_bus()
        yenfu_cycles = dirnnb_cycles = 0.0
        yenfu_checks = dirnnb_checks = 0
        for op in ops:
            out_y, out_d = yenfu.access(*op), dirnnb.access(*op)
            yenfu_cycles += sum(bus.cost_of(kind) * n for kind, n in out_y.ops)
            dirnnb_cycles += sum(bus.cost_of(kind) * n for kind, n in out_d.ops)
            yenfu_checks += out_y.op_count(BusOp.DIR_CHECK)
            dirnnb_checks += out_d.op_count(BusOp.DIR_CHECK)
        assert yenfu_checks < dirnnb_checks
        assert yenfu.saved_directory_checks > 0
        # Bus cycles are not reduced (single-bit maintenance eats the gain).
        assert yenfu_cycles >= dirnnb_cycles * 0.95

    def test_event_frequencies_match_dirnnb(self):
        rng = random.Random(103)
        a, b = YenFu(4), DirnNB(4)
        for _ in range(4000):
            cache = rng.randrange(4)
            access = rng.choice((AccessType.READ, AccessType.WRITE))
            block = rng.randrange(25)
            assert a.access(cache, access, block).event is b.access(
                cache, access, block
            ).event

    def test_central_directory_unchanged(self):
        assert YenFu.directory_bits_per_block(16) == DirnNB.directory_bits_per_block(16)
