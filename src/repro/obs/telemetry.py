"""Distributed sweep telemetry: spans, status snapshots, cross-process IDs.

The rest of :mod:`repro.obs` observes one process at a time; this module
ties a *multi-process* sweep into one causal record.  Three pieces:

**Spans.**  A :class:`Span` is a named, timed interval with a kind from
:data:`SPAN_KINDS`, a parent, and a trace id shared by everything in one
sweep.  :class:`SpanRecorder` collects finished spans in one process;
span identity is a ``(trace_id, span_id)`` pair of random hex tokens, so
a worker subprocess can open child spans under a parent span it has never
seen — the sweep loop passes the pair into the cell executor, the worker
records ``attempt``/``stage`` spans against it, serialises them as plain
dicts over the existing result pipe, and the parent folds them back in
with :meth:`SpanRecorder.ingest`.  The hierarchy is
``sweep → cell → attempt → stage``, with instantaneous marker spans for
the sweep's decision points: ``cache_hit``, ``reprice``, ``retry``,
``timeout`` and ``fault``.

**Chrome-trace export.**  :meth:`SpanRecorder.write_chrome_trace` reuses
:class:`~repro.obs.probe.ChromeTraceSink` — each OS pid that recorded a
span becomes a process track, each span a complete slice (``ts``/``dur``
in microseconds since the earliest span) — so ``--emit-spans FILE``
yields a Perfetto-loadable timeline of an entire ``--jobs N`` sweep, and
``tools/validate_trace.py`` validates span traces and per-reference
traces alike.

**Status snapshots.**  :func:`write_status` atomically publishes a small
JSON document (cells done/running/failed, refs/sec, ETA) that the sweep
loop refreshes on its heartbeat cadence; :func:`read_status` and
:func:`render_status` are the consumer half, behind the
``repro-coherence status`` verb — a *different process* tailing the
snapshot and the sweep journal, which is exactly the interface a
long-running sweep service would expose.

Telemetry is strictly an observer: with no recorder attached the sweep
pays nothing, and with one attached the simulated counters are
bit-identical (``tests/test_telemetry.py`` proves both across every
protocol).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from .probe import ChromeTraceSink

__all__ = [
    "SPAN_KINDS",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "read_status",
    "render_status",
    "write_status",
]

#: Every span kind the sweep hierarchy emits.  The first four are the
#: containment levels; the rest are instantaneous decision markers.
SPAN_KINDS = (
    "sweep",
    "cell",
    "attempt",
    "stage",
    "cache_hit",
    "reprice",
    "retry",
    "timeout",
    "fault",
)

#: Schema version stamped into status snapshots.
STATUS_SCHEMA_VERSION = 1

#: What a parent ships to a worker so the worker's spans join the tree:
#: ``(trace_id, parent_span_id)``.
SpanContext = Tuple[str, str]


def _token() -> str:
    """A 16-hex-char id, unique across processes (no clock involved)."""
    return os.urandom(8).hex()


@dataclass
class Span:
    """One finished (or in-flight) telemetry interval."""

    name: str
    kind: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    #: wall-clock start/end (``time.time()``), comparable across processes
    start_s: float
    end_s: float = 0.0
    #: OS pid of the process that recorded the span
    pid: int = 0
    #: Chrome-trace thread track hint (cells use their grid index)
    tid: int = 0
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "pid": self.pid,
            "tid": self.tid,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Span":
        known = {name for name in cls.__dataclass_fields__}
        data = {key: value for key, value in payload.items() if key in known}
        data["attributes"] = dict(data.get("attributes") or {})
        return cls(**data)


class _ActiveSpan:
    """Context manager for an open span; usable as a parent immediately."""

    __slots__ = ("_recorder", "span")

    def __init__(self, recorder: "SpanRecorder", span: Span) -> None:
        self._recorder = recorder
        self.span = span

    @property
    def span_id(self) -> str:
        return self.span.span_id

    def end(self, **attributes: object) -> Span:
        return self._recorder.end(self, **attributes)

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        if exc_type is not None:
            self.span.attributes.setdefault("error", True)
        self.end()


ParentLike = Union[None, str, Span, _ActiveSpan]


def _parent_id(parent: ParentLike) -> Optional[str]:
    if parent is None or isinstance(parent, str):
        return parent
    if isinstance(parent, _ActiveSpan):
        return parent.span.span_id
    return parent.span_id


class SpanRecorder:
    """Collects one process's finished spans; mergeable across processes.

    The parent sweep creates one (minting a fresh ``trace_id``); workers
    create theirs from the shipped :data:`SpanContext` so ids line up.
    Recording is append-only and allocation-light — the recorder is never
    consulted by the simulation, only written to.
    """

    def __init__(
        self,
        trace_id: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id if trace_id is not None else _token()
        self.spans: List[Span] = []

    # -- recording -------------------------------------------------------------

    def begin(
        self,
        name: str,
        kind: str,
        parent: ParentLike = None,
        tid: int = 0,
        **attributes: object,
    ) -> _ActiveSpan:
        """Open a span now; close it with ``.end()`` (or ``with``)."""
        if kind not in SPAN_KINDS:
            known = ", ".join(SPAN_KINDS)
            raise ValueError(f"unknown span kind {kind!r}; known: {known}")
        span = Span(
            name=name,
            kind=kind,
            trace_id=self.trace_id,
            span_id=_token(),
            parent_id=_parent_id(parent),
            start_s=time.time(),
            pid=os.getpid(),
            tid=tid,
            attributes=dict(attributes),
        )
        return _ActiveSpan(self, span)

    def span(
        self,
        name: str,
        kind: str,
        parent: ParentLike = None,
        tid: int = 0,
        **attributes: object,
    ) -> _ActiveSpan:
        """Alias of :meth:`begin` reading naturally in ``with`` statements."""
        return self.begin(name, kind, parent=parent, tid=tid, **attributes)

    def end(self, active: _ActiveSpan, **attributes: object) -> Span:
        span = active.span
        if span.end_s == 0.0:  # idempotent: manual end + __exit__ both call
            span.end_s = time.time()
            span.attributes.update(attributes)
            self.spans.append(span)
        return span

    def event(
        self,
        name: str,
        kind: str,
        parent: ParentLike = None,
        tid: int = 0,
        **attributes: object,
    ) -> Span:
        """Record an instantaneous marker span (cache_hit, retry, ...)."""
        active = self.begin(name, kind, parent=parent, tid=tid, **attributes)
        return self.end(active)

    # -- cross-process merge ---------------------------------------------------

    def serialized(self) -> List[dict]:
        """All finished spans as plain dicts (the result-pipe payload)."""
        return [span.to_dict() for span in self.spans]

    def ingest(self, payloads: Iterable[Mapping[str, object]]) -> int:
        """Fold spans serialised by another process into this recorder."""
        added = 0
        for payload in payloads:
            self.spans.append(Span.from_dict(payload))
            added += 1
        return added

    # -- export ----------------------------------------------------------------

    def write_chrome_trace(self, destination: Union[str, Path]) -> int:
        """Write every recorded span as a Chrome-trace file; returns #slices.

        One process track per OS pid (named after the root span recorded
        there), spans as complete slices with ``ts``/``dur`` in integer
        microseconds relative to the earliest span, ``cat`` = span kind.
        The output passes ``tools/validate_trace.py`` and loads in
        Perfetto next to per-reference traces.
        """
        if not self.spans:
            raise ValueError("no spans recorded; nothing to write")
        epoch = min(span.start_s for span in self.spans)
        pid_labels: Dict[int, str] = {}
        for span in self.spans:
            label = (
                f"sweep parent (pid {span.pid})"
                if span.kind == "sweep"
                else f"worker (pid {span.pid})"
            )
            if span.kind == "sweep" or span.pid not in pid_labels:
                pid_labels[span.pid] = label
        ordered = sorted(self.spans, key=lambda span: span.start_s)
        with ChromeTraceSink(destination) as sink:
            for pid in sorted(pid_labels):
                sink.track(pid_labels[pid], pid=pid)
            for span in ordered:
                args: Dict[str, object] = {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                }
                if span.parent_id is not None:
                    args["parent_id"] = span.parent_id
                args.update(span.attributes)
                sink.slice(
                    pid=span.pid,
                    tid=span.tid,
                    name=span.name,
                    ts=max(0, int((span.start_s - epoch) * 1e6)),
                    dur=max(0, int(span.duration_s * 1e6)),
                    cat=span.kind,
                    args=args,
                )
        return len(ordered)

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SpanRecorder(trace_id={self.trace_id!r}, spans={len(self.spans)})"


# -- status snapshots ----------------------------------------------------------


def write_status(path: Union[str, Path], payload: Mapping[str, object]) -> None:
    """Atomically publish a status snapshot (tmp file + ``os.replace``).

    Readers (the ``status`` verb, a future service endpoint) always see a
    complete JSON document, never a torn write.  Failures are the
    caller's problem to degrade — the sweep loop logs-and-continues, a
    dead status file must never kill a live sweep.
    """
    path = Path(path)
    document = dict(payload)
    document.setdefault("schema", STATUS_SCHEMA_VERSION)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    os.replace(tmp, path)


def read_status(path: Union[str, Path]) -> Optional[dict]:
    """The snapshot at ``path``, or None when missing/torn (never raises)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def render_status(
    status: Mapping[str, object],
    journal_counts: Optional[Mapping[str, int]] = None,
) -> str:
    """A human-readable live view of one sweep's status snapshot."""

    def number(key: str, default: float = 0) -> float:
        value = status.get(key, default)
        return value if isinstance(value, (int, float)) else default

    state = str(status.get("state", "unknown"))
    age = max(0.0, time.time() - number("ts"))
    total = int(number("cells"))
    done = int(number("done"))
    ok = int(number("ok"))
    failed = int(number("failed"))
    running = int(number("running"))
    pending = int(number("pending", max(0, total - done - running)))
    percent = (100.0 * done / total) if total else 0.0
    lines = [
        f"sweep {status.get('sweep_id', '?')} — {state} "
        f"(pid {int(number('pid'))}, jobs {int(number('jobs', 1))}, "
        f"snapshot {age:.1f}s old)",
        f"cells: {done}/{total} done ({percent:.0f}%) — {ok} ok, "
        f"{failed} failed, {running} running, {pending} pending",
        f"work:  {int(number('simulated'))} simulated, "
        f"{int(number('cache_hits'))} cache hits, "
        f"{int(number('repriced'))} repriced, "
        f"{int(number('retries'))} retries, "
        f"{int(number('timeouts'))} timeouts",
    ]
    refs_line = (
        f"refs:  {int(number('references')):,} done — "
        f"{number('refs_per_sec'):,.0f} refs/sec"
    )
    eta = status.get("eta_s")
    if isinstance(eta, (int, float)):
        refs_line += f" — ETA {eta:.1f}s"
    lines.append(refs_line)
    lines.append(f"wall:  {number('wall_s'):.2f}s elapsed")
    if journal_counts is not None:
        lines.append(
            f"journal: {journal_counts.get('ok', 0)} ok, "
            f"{journal_counts.get('failed', 0)} failed cells recorded"
        )
    return "\n".join(lines)
