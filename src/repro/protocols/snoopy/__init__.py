"""Snoopy coherence protocols: the paper's comparison schemes and the
related-work protocols its bibliography cites."""

from .berkeley import Berkeley
from .competitive import CompetitiveUpdate
from .dragon import Dragon
from .firefly import Firefly
from .illinois import Illinois
from .write_once import WriteOnce
from .wti import WTI

__all__ = ["Berkeley", "CompetitiveUpdate", "Dragon", "Firefly", "Illinois", "WriteOnce", "WTI"]
