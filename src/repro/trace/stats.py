"""Trace characterisation, reproducing the paper's Table 3.

Table 3 summarises each trace by total references, instruction fetches, data
reads, data writes, and the user/system split (all in thousands).  This module
computes those columns plus a few derived quantities the paper quotes in the
text: the read-to-write ratio, the fraction of reads that are lock spins
(roughly one third in POPS and THOR), and the fraction of OS activity
(roughly 10%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set

from .record import AccessType, DEFAULT_BLOCK_SIZE, TraceRecord

__all__ = ["TraceStats", "collect_stats"]


@dataclass(frozen=True)
class TraceStats:
    """Aggregate characteristics of one multiprocessor trace.

    Counts are raw reference counts; use :meth:`thousands` for the Table 3
    presentation.
    """

    name: str
    total: int
    instructions: int
    data_reads: int
    data_writes: int
    user: int
    system: int
    lock_spin_reads: int
    distinct_blocks: int
    shared_blocks: int
    processes: int
    processors: int

    @property
    def data_refs(self) -> int:
        return self.data_reads + self.data_writes

    @property
    def read_write_ratio(self) -> float:
        """Data reads per data write (Section 4.4 notes this is high)."""
        if self.data_writes == 0:
            return float("inf")
        return self.data_reads / self.data_writes

    @property
    def lock_spin_fraction_of_reads(self) -> float:
        """Fraction of data reads that are lock-spin tests."""
        if self.data_reads == 0:
            return 0.0
        return self.lock_spin_reads / self.data_reads

    @property
    def os_fraction(self) -> float:
        """Fraction of all references issued by the operating system."""
        if self.total == 0:
            return 0.0
        return self.system / self.total

    @property
    def shared_block_fraction(self) -> float:
        """Fraction of distinct data blocks touched by more than one process."""
        if self.distinct_blocks == 0:
            return 0.0
        return self.shared_blocks / self.distinct_blocks

    def thousands(self) -> Dict[str, float]:
        """The Table 3 row for this trace: counts in thousands."""
        return {
            "Trace": self.name,
            "Refs": self.total / 1000.0,
            "Instr": self.instructions / 1000.0,
            "DRd": self.data_reads / 1000.0,
            "DWrt": self.data_writes / 1000.0,
            "User": self.user / 1000.0,
            "Sys": self.system / 1000.0,
        }


def collect_stats(
    trace: Iterable[TraceRecord],
    name: str = "trace",
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> TraceStats:
    """Single-pass trace characterisation.

    Sharing is classified at process level (Section 4.4): a data block is
    *shared* if more than one process references it.
    """
    total = instructions = reads = writes = user = system = spins = 0
    block_owner: Dict[int, int] = {}
    shared: Set[int] = set()
    pids: Set[int] = set()
    cpus: Set[int] = set()

    for record in trace:
        total += 1
        pids.add(record.pid)
        cpus.add(record.cpu)
        if record.is_os:
            system += 1
        else:
            user += 1
        if record.access is AccessType.INSTR:
            instructions += 1
            continue
        if record.access is AccessType.READ:
            reads += 1
            if record.is_lock_spin:
                spins += 1
        else:
            writes += 1
        block = record.address // block_size
        owner = block_owner.get(block)
        if owner is None:
            block_owner[block] = record.pid
        elif owner != record.pid:
            shared.add(block)

    return TraceStats(
        name=name,
        total=total,
        instructions=instructions,
        data_reads=reads,
        data_writes=writes,
        user=user,
        system=system,
        lock_spin_reads=spins,
        distinct_blocks=len(block_owner),
        shared_blocks=len(shared),
        processes=len(pids),
        processors=len(cpus),
    )


def format_table3(rows: Iterable[TraceStats]) -> str:
    """Render Table 3 ("Summary of trace characteristics") as text."""
    header = ("Trace", "Refs", "Instr", "DRd", "DWrt", "User", "Sys")
    lines = ["{:<8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}".format(*header)]
    for stats in rows:
        row = stats.thousands()
        lines.append(
            "{:<8} {:>8.0f} {:>8.0f} {:>8.0f} {:>8.0f} {:>8.0f} {:>8.0f}".format(
                row["Trace"], row["Refs"], row["Instr"], row["DRd"],
                row["DWrt"], row["User"], row["Sys"],
            )
        )
    return "\n".join(lines)
