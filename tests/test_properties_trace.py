"""Property-based tests for trace formats, streams and digit codes."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.directory.coarse import DigitCode
from repro.trace.atum import read_binary, read_text, write_binary, write_text
from repro.trace.record import AccessType, TraceRecord
from repro.trace.stream import exclude_lock_spins, interleave, materialize

records = st.builds(
    TraceRecord,
    cpu=st.integers(min_value=0, max_value=255),
    pid=st.integers(min_value=0, max_value=65535),
    access=st.sampled_from(AccessType),
    address=st.integers(min_value=0, max_value=2**48),
    is_lock_spin=st.booleans(),
    is_os=st.booleans(),
)
traces = st.lists(records, max_size=60)


class TestAtumRoundTrip:
    @given(trace=traces)
    @settings(max_examples=40, deadline=None)
    def test_binary_round_trip(self, trace, tmp_path_factory):
        path = tmp_path_factory.mktemp("atum") / "trace.bin"
        write_binary(path, trace)
        assert list(read_binary(path)) == trace

    @given(trace=traces)
    @settings(max_examples=40, deadline=None)
    def test_text_round_trip(self, trace, tmp_path_factory):
        path = tmp_path_factory.mktemp("atum") / "trace.txt"
        write_text(path, trace)
        assert list(read_text(path)) == trace


class TestStreamProperties:
    @given(trace=traces)
    @settings(max_examples=60)
    def test_spin_exclusion_is_idempotent(self, trace):
        once = materialize(exclude_lock_spins(trace))
        twice = materialize(exclude_lock_spins(once))
        assert once == twice

    @given(trace=traces)
    @settings(max_examples=60)
    def test_spin_exclusion_partitions_the_trace(self, trace):
        kept = materialize(exclude_lock_spins(trace))
        dropped = [r for r in trace if r.is_lock_spin]
        assert len(kept) + len(dropped) == len(trace)

    @given(
        streams=st.lists(
            st.lists(st.integers(min_value=0, max_value=1000), max_size=20),
            min_size=1,
            max_size=4,
        ),
        seed=st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=60)
    def test_interleave_is_an_order_preserving_merge(self, streams, seed):
        rng = random.Random(seed)
        record_streams = [
            [
                TraceRecord(cpu=i, pid=i, access=AccessType.READ, address=a)
                for a in stream
            ]
            for i, stream in enumerate(streams)
        ]
        runs = [rng.randint(1, 4) for _ in range(200)]
        merged = materialize(interleave(record_streams, iter(runs)))
        assert len(merged) == sum(len(s) for s in record_streams)
        for i, stream in enumerate(record_streams):
            assert [r for r in merged if r.cpu == i] == stream


class TestDigitCodeProperties:
    caches = st.integers(min_value=0, max_value=15)

    @given(members=st.lists(caches, min_size=1, max_size=8))
    @settings(max_examples=100)
    def test_merged_code_is_always_a_superset(self, members):
        code = DigitCode.exact(members[0], width=4)
        for cache in members[1:]:
            code = code.merged_with(cache)
        for cache in members:
            assert code.contains(cache)

    @given(members=st.lists(caches, min_size=1, max_size=8))
    @settings(max_examples=100)
    def test_denoted_caches_match_contains(self, members):
        code = DigitCode.exact(members[0], width=4)
        for cache in members[1:]:
            code = code.merged_with(cache)
        denoted = set(code.denoted_caches())
        for cache in range(16):
            assert (cache in denoted) == code.contains(cache)
        assert len(denoted) == code.denoted_count

    @given(a=caches, b=caches)
    @settings(max_examples=100)
    def test_merge_is_commutative(self, a, b):
        ab = DigitCode.exact(a, width=4).merged_with(b)
        ba = DigitCode.exact(b, width=4).merged_with(a)
        assert ab == ba

    @given(members=st.lists(caches, min_size=1, max_size=8))
    @settings(max_examples=100)
    def test_denoted_count_is_a_power_of_two(self, members):
        code = DigitCode.exact(members[0], width=4)
        for cache in members[1:]:
            code = code.merged_with(cache)
        count = code.denoted_count
        assert count & (count - 1) == 0
