"""Unit tests for the trace-driven simulator."""

import pytest

from conftest import record, trace_of
from repro.core.simulator import simulate
from repro.interconnect.bus import pipelined_bus
from repro.protocols.events import Event
from repro.protocols.registry import create_protocol
from repro.trace.stream import SharingModel


class TestSimulate:
    def test_counts_every_reference(self, tiny_trace):
        result = simulate(create_protocol("dir0b", 4), tiny_trace)
        assert result.references == len(tiny_trace)

    def test_instructions_classified_but_free(self, tiny_trace):
        result = simulate(create_protocol("dir0b", 4), tiny_trace)
        assert result.counters.event_count(Event.INSTR) == 1

    def test_block_size_controls_aliasing(self):
        # Two addresses 16 apart: distinct blocks at size 16, same at 32.
        trace = trace_of([(0, "r", 0), (1, "w", 16)])
        small = simulate(create_protocol("dir0b", 4), trace, block_size=16)
        assert small.counters.event_count(Event.WM_FIRST_REF) == 1
        large = simulate(create_protocol("dir0b", 4), trace, block_size=32)
        # At block size 32 the write hits the block cpu 0 just fetched.
        assert large.counters.event_count(Event.WM_BLK_CLEAN) == 1

    def test_rejects_nonpositive_block_size(self, tiny_trace):
        with pytest.raises(ValueError):
            simulate(create_protocol("dir0b", 4), tiny_trace, block_size=0)

    def test_too_many_sharing_units_rejected(self):
        trace = [record(cpu=c, pid=c, address=0) for c in range(5)]
        with pytest.raises(ValueError, match="sharing units"):
            simulate(create_protocol("dir0b", 4), trace)

    def test_process_sharing_merges_migrated_references(self):
        # One process bouncing between two CPUs never coherence-misses
        # under process-level sharing.
        trace = [
            record(cpu=0, pid=7, kind="r", address=0),
            record(cpu=1, pid=7, kind="r", address=0),
        ]
        result = simulate(
            create_protocol("dir0b", 4), trace, sharing_model=SharingModel.PROCESS
        )
        assert result.counters.event_count(Event.READ_HIT) == 1

    def test_processor_sharing_sees_migration_as_sharing(self):
        trace = [
            record(cpu=0, pid=7, kind="r", address=0),
            record(cpu=1, pid=7, kind="r", address=0),
        ]
        result = simulate(
            create_protocol("dir0b", 4),
            trace,
            sharing_model=SharingModel.PROCESSOR,
        )
        assert result.counters.event_count(Event.RM_BLK_CLEAN) == 1

    def test_cost_summary_integration(self, tiny_trace):
        result = simulate(create_protocol("wti", 4), tiny_trace)
        summary = result.cost_summary(pipelined_bus())
        assert summary.cycles_per_reference > 0
        assert summary.protocol == "WTI"

    def test_invariant_checking_hook_runs(self, tiny_trace):
        result = simulate(
            create_protocol("dir0b", 4), tiny_trace, check_invariants_every=1
        )
        assert result.references == len(tiny_trace)

    def test_result_carries_metadata(self, tiny_trace):
        result = simulate(
            create_protocol("dragon", 4), tiny_trace, trace_name="tiny"
        )
        assert result.trace_name == "tiny"
        assert result.protocol_label == "Dragon"
        assert result.n_caches == 4
        assert result.sharing_model is SharingModel.PROCESS

    def test_invalidation_histogram_exposed(self):
        trace = trace_of([(0, "r", 0), (1, "r", 0), (0, "w", 0)])
        # Seed block with reads, then a write invalidates one remote copy...
        # but the very first access is a first-ref, so add a warmup write.
        result = simulate(create_protocol("dir0b", 4), trace)
        histogram = result.invalidation_histogram
        assert histogram.total == 1
        assert histogram.count(1) == 1
