"""Sweep-runner performance: serial vs parallel throughput, cache latency.

Not a paper experiment — a perf benchmark of the :mod:`repro.runner`
subsystem so later PRs have a trajectory to compare against.  Beyond the
human-readable artifact, it emits machine-readable
``benchmarks/results/BENCH_sweep.json`` assembled from each run's
:class:`~repro.obs.metrics.MetricsRegistry` (via
:meth:`~repro.runner.sweep.SweepReport.metrics_dict`), so the bench
artifact and ``repro-coherence sweep --metrics-json`` share one schema.

Parallel speedup depends on the machine: on a single hardware thread the
worker pool only adds overhead, which is itself worth tracking.
"""

from __future__ import annotations

import json
import os
import time

from conftest import RESULTS_DIR, SCALE

from repro.obs import MetricsRegistry
from repro.runner import ResultCache, run_sweep, sweep_grid

#: A grid small enough to run three times (serial, parallel, cached).
SWEEP_SCHEMES = ("dir0b", "dragon")
SWEEP_JOBS = int(os.environ.get("REPRO_BENCH_SWEEP_JOBS", "2"))


def test_sweep_throughput_and_cache_latency(tmp_path_factory, save_result):
    specs = sweep_grid(SWEEP_SCHEMES, scale=SCALE)

    serial = run_sweep(specs, jobs=1, registry=MetricsRegistry())
    parallel = run_sweep(specs, jobs=SWEEP_JOBS, registry=MetricsRegistry())
    assert serial.cell_table() == parallel.cell_table()

    cache_registry = MetricsRegistry()
    cache = ResultCache(
        tmp_path_factory.mktemp("sweep-cache"), registry=cache_registry
    )
    cold = run_sweep(specs, jobs=1, cache=cache, registry=cache_registry)
    start = time.perf_counter()
    warm = run_sweep(specs, jobs=1, cache=cache, registry=cache_registry)
    warm_wall = time.perf_counter() - start
    assert warm.simulations == 0
    assert warm.cell_table() == serial.cell_table()

    payload = {
        "grid": {
            "schemes": list(SWEEP_SCHEMES),
            "traces": sorted({spec.trace for spec in specs}),
            "cells": len(specs),
            "scale_denominator": round(1.0 / SCALE),
            "references": serial.total_references,
        },
        "serial": serial.metrics_dict(),
        "parallel": parallel.metrics_dict(),
        "cache_cold": cold.metrics_dict(),
        "cache_warm": warm.metrics_dict(),
        "derived": {
            "parallel_speedup": (
                serial.wall_time / parallel.wall_time
                if parallel.wall_time > 0
                else 0.0
            ),
            "cache_hit_latency_s_per_cell": (
                warm_wall / warm.cells if warm.cells else 0.0
            ),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sweep.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    # The cold+warm runs shared one registry: its counters must add up.
    snapshot = cache_registry.as_dict()["counters"]
    assert snapshot["sweep.cells"] == 2 * len(specs)
    assert snapshot["sweep.simulated"] == len(specs)
    assert snapshot["sweep.cache_hits"] == len(specs)
    assert snapshot["cache.hit"] == len(specs)
    assert snapshot["cache.miss"] == len(specs)

    save_result(
        "sweep_runner",
        "\n".join(
            [
                "Sweep runner throughput "
                f"({len(specs)} cells, {serial.total_references:,} refs)",
                f"serial:   {serial.wall_time:8.2f}s  "
                f"{serial.refs_per_sec:12,.0f} refs/sec",
                f"parallel: {parallel.wall_time:8.2f}s  "
                f"{parallel.refs_per_sec:12,.0f} refs/sec  "
                f"(jobs={SWEEP_JOBS}, "
                f"speedup {payload['derived']['parallel_speedup']:.2f}x)",
                f"cache:    {warm_wall:8.2f}s warm replay  "
                f"({payload['derived']['cache_hit_latency_s_per_cell'] * 1e3:.1f} "
                "ms/cell)",
            ]
        ),
    )
