"""DiriB: i directory pointers plus a broadcast bit (Section 6).

The directory entry stores up to ``i`` cache pointers.  While the caches
that must be *invalidated* fit in the pointers, invalidation is a directed
sequential message per copy; when they do not, the broadcast bit has been
set and the invalidation costs one ``b``-cycle broadcast.

This implements the paper's own simple cost model: "a single invalidation
request is issued if the broadcast bit is clear; otherwise, the invalidation
must be broadcast ... this directory scheme requires 0.0485 + 0.0006·b
cycles per memory reference" — i.e. the broadcast rate equals the rate of
invalidation situations with more than ``i`` remote copies.  The requesting
cache's identity arrives with the request itself, so only the *other*
holders consume pointer storage.  (With multiple sharers the pointer
contents can be stale in ways a real implementation would have to handle
conservatively; the paper's model — and this class — charges the broadcast
exactly when more than ``i`` caches must be invalidated.)

``Dir1B`` is ``DiriB(i=1)``.  The state-change specification is unchanged
from Dir0B (all copies are still permitted), so the event frequencies again
match Dir0B; only the mixture of directed vs broadcast invalidations
differs.
"""

from __future__ import annotations

import math

from ...interconnect.bus import BusOp
from ..base import OpList
from ..table import InvalidationSpec
from .dir0b import Dir0B

__all__ = ["DiriB", "Dir1B"]


class DiriB(Dir0B):
    """Directory with ``i`` pointers and a broadcast fallback bit."""

    name = "dirib"
    label = "DiriB"
    kind = "directory"

    def __init__(self, n_caches: int, pointers: int = 1) -> None:
        if pointers < 1:
            raise ValueError(f"pointers must be >= 1, got {pointers}")
        super().__init__(n_caches)
        self.pointers = pointers
        #: invalidations that had to fall back to a broadcast
        self.broadcasts = 0
        #: invalidations covered by directed pointer messages
        self.directed_invalidations = 0

    def _invalidation_ops(self, fanout: int) -> OpList:
        """Directed messages while the copies fit the pointers; else one
        broadcast."""
        if fanout <= self.pointers:
            self.directed_invalidations += 1
            return ((BusOp.INVALIDATE, fanout),)
        self.broadcasts += 1
        return ((BusOp.BROADCAST_INVALIDATE, 1),)

    def _invalidation_spec(self) -> InvalidationSpec:
        """Directed while the copies fit the pointers, broadcast beyond.

        Note the fast backend does not maintain the per-instance
        ``broadcasts``/``directed_invalidations`` diagnostics — they are not
        part of :class:`~repro.core.counters.SimulationCounters`.
        """
        return InvalidationSpec(
            threshold=self.pointers,
            directed=((BusOp.INVALIDATE, 1),),
            broadcast=((BusOp.BROADCAST_INVALIDATE, 1),),
        )

    @classmethod
    def directory_bits_per_block(cls, n_caches: int, pointers: int = 1) -> int:
        """``i`` cache pointers, a broadcast bit, and a dirty bit."""
        pointer_bits = max(1, math.ceil(math.log2(n_caches)))
        return pointers * pointer_bits + 2


class Dir1B(DiriB):
    """The single-pointer-plus-broadcast-bit scheme of Section 6."""

    name = "dir1b"
    label = "Dir1B"

    def __init__(self, n_caches: int) -> None:
        super().__init__(n_caches, pointers=1)

    @classmethod
    def directory_bits_per_block(cls, n_caches: int) -> int:
        return DiriB.directory_bits_per_block(n_caches, pointers=1)
