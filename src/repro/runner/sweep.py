"""The parallel sweep engine: fan RunSpecs across workers, merge results.

One sweep executes a grid of :class:`~repro.runner.spec.RunSpec`s —
consulting the optional :class:`~repro.runner.cache.ResultCache` first,
fanning the misses over a ``multiprocessing`` pool (``jobs > 1``) or
running them inline (``jobs == 1``) — and returns a :class:`SweepReport`
carrying every result plus the throughput and cache metrics.

Observability: every sweep tallies into a
:class:`~repro.obs.metrics.MetricsRegistry` (wall time, cell timings,
cache traffic; exposed as :attr:`SweepReport.registry` and via
:meth:`SweepReport.metrics_dict` for ``--metrics-json``), every executed
cell carries a :class:`~repro.obs.manifest.RunManifest` with its
provenance (also serialised next to cached results), progress and
heartbeat lines go through the structured ``repro.runner.sweep`` logger,
and a ``probe_factory`` can attach a per-reference
:class:`~repro.obs.probe.ReferenceProbe` to each simulated cell (probed
sweeps run inline, since event streams cannot cross process boundaries).

Determinism contract: the outcome list is ordered exactly like the input
spec list regardless of worker scheduling, and each worker reconstructs its
trace from the spec's seed, so ``jobs=N`` produces bit-identical counters
to ``jobs=1``.  Only the metrics (timings, worker attribution) vary from
run to run, which is why :meth:`SweepReport.cell_table` excludes them and
the CLI routes them to stderr.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.comparison import ComparisonResult
from ..core.simulator import SimulationResult
from ..interconnect.bus import nonpipelined_bus, pipelined_bus
from ..obs.log import fields, get_logger
from ..obs.manifest import RunManifest, collect_manifest
from ..obs.metrics import MetricsRegistry
from ..obs.probe import ReferenceProbe
from .cache import ResultCache
from .spec import INFINITE_GEOMETRY, RunSpec

__all__ = ["RunOutcome", "SweepReport", "run_sweep"]

logger = get_logger("runner.sweep")

#: Hook called once per completed cell, in spec order.
ProgressHook = Callable[["RunOutcome"], None]

#: Factory producing a per-cell probe for instrumented sweeps.
ProbeFactory = Callable[[RunSpec], Optional[ReferenceProbe]]

#: Seconds between INFO-level heartbeat lines while a sweep runs.
HEARTBEAT_SECONDS = 10.0


@dataclass(frozen=True)
class RunOutcome:
    """One executed (or cache-served) sweep cell."""

    spec: RunSpec
    result: SimulationResult
    cached: bool
    #: simulation seconds (0.0 for cache hits)
    elapsed: float
    #: pid of the process that produced the result
    worker: int
    #: provenance of the execution (None when served from a pre-manifest cache)
    manifest: Optional[RunManifest] = None


@dataclass(frozen=True)
class SweepReport:
    """Everything a sweep produced: results in spec order, plus metrics."""

    outcomes: Sequence[RunOutcome]
    wall_time: float
    jobs: int
    #: the sweep's metrics (wall/cell timers, cache counters); always set by
    #: :func:`run_sweep`, defaulted for hand-built reports in tests
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    # -- counts ----------------------------------------------------------------

    @property
    def cells(self) -> int:
        return len(self.outcomes)

    @property
    def simulations(self) -> int:
        """Cells actually simulated this run (cache misses)."""
        return sum(1 for outcome in self.outcomes if not outcome.cached)

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def cache_hit_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return self.cache_hits / len(self.outcomes)

    @property
    def total_references(self) -> int:
        return sum(outcome.result.references for outcome in self.outcomes)

    @property
    def simulated_references(self) -> int:
        return sum(
            outcome.result.references
            for outcome in self.outcomes
            if not outcome.cached
        )

    @property
    def refs_per_sec(self) -> float:
        """Simulation throughput: freshly simulated references per wall second."""
        if self.wall_time <= 0:
            return 0.0
        return self.simulated_references / self.wall_time

    def worker_timings(self) -> Dict[int, Tuple[int, float]]:
        """Per-worker (cells simulated, simulation seconds), keyed by pid."""
        timings: Dict[int, Tuple[int, float]] = {}
        for outcome in self.outcomes:
            if outcome.cached:
                continue
            cells, seconds = timings.get(outcome.worker, (0, 0.0))
            timings[outcome.worker] = (cells + 1, seconds + outcome.elapsed)
        return timings

    # -- views -----------------------------------------------------------------

    def comparison(self) -> ComparisonResult:
        """The sweep's results as a protocol x trace comparison.

        Requires the grid to collapse onto those two axes: exactly one
        result per (protocol, trace) cell and a complete cross product —
        the shape every paper table and figure consumes.
        """
        protocols: List[str] = []
        traces: List[str] = []
        results: Dict[str, Dict[str, SimulationResult]] = {}
        for outcome in self.outcomes:
            protocol, trace = outcome.spec.protocol, outcome.spec.trace
            if protocol not in results:
                protocols.append(protocol)
                results[protocol] = {}
            if trace not in traces:
                traces.append(trace)
            if trace in results[protocol]:
                raise ValueError(
                    f"grid has multiple results for ({protocol}, {trace}); "
                    "a comparison needs the sweep collapsed to one config "
                    "per (protocol, trace) cell"
                )
            results[protocol][trace] = outcome.result
        for protocol in protocols:
            missing = [t for t in traces if t not in results[protocol]]
            if missing:
                raise ValueError(
                    f"grid is not a full cross product: {protocol} lacks "
                    f"traces {missing}"
                )
        return ComparisonResult(
            protocols=tuple(protocols), traces=tuple(traces), results=results
        )

    def cell_table(self) -> str:
        """Deterministic per-cell summary (identical across jobs/cache runs)."""
        pipe, nonpipe = pipelined_bus(), nonpipelined_bus()
        header = (
            f"{'protocol':<13}{'trace':<7}{'block':>6}{'geometry':>10}"
            f"{'sharing':>10}{'refs':>10}"
            f"{'cyc/ref pipe':>14}{'cyc/ref nonp':>14}"
        )
        lines = [header, "-" * len(header)]
        for outcome in self.outcomes:
            spec, result = outcome.spec, outcome.result
            geometry = spec.geometry or INFINITE_GEOMETRY
            lines.append(
                f"{spec.protocol:<13}{spec.trace:<7}{spec.block_size:>6}"
                f"{geometry:>10}"
                f"{spec.sharing_model.value:>10}{result.references:>10}"
                f"{result.cycles_per_reference(pipe):>14.6f}"
                f"{result.cycles_per_reference(nonpipe):>14.6f}"
            )
        return "\n".join(lines)

    def render_metrics(self) -> str:
        """Human-readable throughput / cache metrics (non-deterministic)."""
        lines = [
            f"sweep: {self.cells} cells ({self.simulations} simulated, "
            f"{self.cache_hits} cached) in {self.wall_time:.2f}s wall, "
            f"jobs={self.jobs}",
            f"refs: {self.total_references:,} total, "
            f"{self.simulated_references:,} simulated, "
            f"{self.refs_per_sec:,.0f} refs/sec",
            f"cache: {self.cache_hits} hits, "
            f"{self.cache_hit_rate:.1%} hit rate",
        ]
        for worker, (cells, seconds) in sorted(self.worker_timings().items()):
            lines.append(
                f"worker {worker}: {cells} cells, {seconds:.2f}s simulation"
            )
        return "\n".join(lines)

    def metrics_dict(self) -> Dict[str, object]:
        """The sweep's metrics as JSON-able data (``--metrics-json``)."""
        return {
            "cells": self.cells,
            "simulated": self.simulations,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "jobs": self.jobs,
            "wall_s": self.wall_time,
            "total_references": self.total_references,
            "simulated_references": self.simulated_references,
            "refs_per_sec": self.refs_per_sec,
            "workers": {
                str(pid): {"cells": cells, "simulation_s": seconds}
                for pid, (cells, seconds) in sorted(self.worker_timings().items())
            },
            "registry": self.registry.as_dict(),
        }


def _execute(spec: RunSpec) -> Tuple[SimulationResult, float, int, RunManifest]:
    """Worker entry point: simulate one cell, timing it and manifesting it."""
    start = time.perf_counter()
    result = spec.run()
    elapsed = time.perf_counter() - start
    manifest = collect_manifest(spec.as_dict(), spec.cache_key(), elapsed)
    return result, elapsed, os.getpid(), manifest


def _execute_probed(
    spec: RunSpec, probe: Optional[ReferenceProbe]
) -> Tuple[SimulationResult, float, int, RunManifest]:
    """Inline execution with a per-reference probe attached."""
    start = time.perf_counter()
    result = spec.run(probe=probe)
    elapsed = time.perf_counter() - start
    manifest = collect_manifest(spec.as_dict(), spec.cache_key(), elapsed)
    return result, elapsed, os.getpid(), manifest


def run_sweep(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressHook] = None,
    probe_factory: Optional[ProbeFactory] = None,
    registry: Optional[MetricsRegistry] = None,
) -> SweepReport:
    """Execute a sweep grid, optionally in parallel and through a cache.

    Cache lookups happen up front in the parent; only misses are dispatched
    to workers, and their results (plus run manifests) are written back to
    the cache by the parent (one writer, no cross-process races on fresh
    entries).  The ``progress`` hook fires once per cell — cache hits
    first, then simulated cells in spec order.  ``probe_factory``, when
    given, produces a per-reference probe for every simulated cell and
    forces inline execution (probes cannot stream across processes).
    ``registry`` collects the sweep's metrics; a fresh one is created when
    omitted and either way it rides on the returned report.
    """
    specs = list(specs)
    if not specs:
        raise ValueError("at least one RunSpec is required")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    registry = registry if registry is not None else MetricsRegistry()
    if probe_factory is not None and jobs > 1:
        logger.warning(
            "probed sweeps run inline; ignoring --jobs",
            extra=fields(jobs=jobs),
        )

    wall = registry.timer("sweep.wall_seconds")
    wall_before = wall.total_seconds
    registry.gauge("sweep.jobs").set(jobs)
    registry.counter("sweep.cells").inc(len(specs))
    logger.info(
        "sweep started",
        extra=fields(
            cells=len(specs), jobs=jobs, cache=cache is not None,
            probed=probe_factory is not None,
        ),
    )

    outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
    pending: List[int] = []
    done = 0
    last_beat = time.perf_counter()

    def _heartbeat() -> None:
        nonlocal last_beat
        now = time.perf_counter()
        if now - last_beat >= HEARTBEAT_SECONDS:
            last_beat = now
            finished = [o for o in outcomes if o is not None]
            logger.info(
                "sweep progress",
                extra=fields(
                    done=done,
                    total=len(specs),
                    simulated=sum(1 for o in finished if not o.cached),
                    references=sum(o.result.references for o in finished),
                ),
            )

    with wall.time():
        for index, spec in enumerate(specs):
            cached_result = (
                cache.get(spec.cache_key()) if cache is not None else None
            )
            if cached_result is not None:
                outcome = RunOutcome(
                    spec=spec,
                    result=cached_result,
                    cached=True,
                    elapsed=0.0,
                    worker=os.getpid(),
                    manifest=cache.get_manifest(spec.cache_key()),
                )
                outcomes[index] = outcome
                done += 1
                registry.counter("sweep.cache_hits").inc()
                if progress is not None:
                    progress(outcome)
                _heartbeat()
            else:
                pending.append(index)

        def _complete(
            index: int,
            payload: Tuple[SimulationResult, float, int, RunManifest],
        ) -> None:
            nonlocal done
            result, elapsed, worker, manifest = payload
            outcome = RunOutcome(
                spec=specs[index],
                result=result,
                cached=False,
                elapsed=elapsed,
                worker=worker,
                manifest=manifest,
            )
            outcomes[index] = outcome
            done += 1
            registry.counter("sweep.simulated").inc()
            registry.histogram("sweep.cell_seconds").observe(elapsed)
            if cache is not None:
                cache.put(specs[index].cache_key(), result, manifest=manifest)
            logger.debug(
                "cell simulated",
                extra=fields(
                    protocol=specs[index].protocol,
                    trace=specs[index].trace,
                    elapsed_s=round(elapsed, 4),
                    worker=worker,
                ),
            )
            if progress is not None:
                progress(outcome)
            _heartbeat()

        if pending:
            if probe_factory is not None:
                for index in pending:
                    probe = probe_factory(specs[index])
                    _complete(index, _execute_probed(specs[index], probe))
            elif jobs == 1:
                for index in pending:
                    _complete(index, _execute(specs[index]))
            else:
                pool_size = min(jobs, len(pending))
                with multiprocessing.Pool(processes=pool_size) as pool:
                    payloads = pool.imap(_execute, [specs[i] for i in pending])
                    for index, payload in zip(pending, payloads):
                        _complete(index, payload)

    wall_time = wall.total_seconds - wall_before
    report = SweepReport(
        outcomes=tuple(outcomes),
        wall_time=wall_time,
        jobs=jobs,
        registry=registry,
    )
    registry.gauge("sweep.refs_per_sec").set(report.refs_per_sec)
    logger.info(
        "sweep finished",
        extra=fields(
            cells=report.cells,
            simulated=report.simulations,
            cache_hits=report.cache_hits,
            wall_s=round(wall_time, 3),
            refs_per_sec=round(report.refs_per_sec),
        ),
    )
    return report
