"""Observability: probes, metrics, manifests, structured logging, profiling.

The paper's whole methodology is counting, and this subsystem makes the
reproduction's own execution countable too:

* :mod:`repro.obs.probe` — per-reference event streaming out of the
  pipeline (JSONL and Chrome-trace/Perfetto sinks), zero-cost when off;
* :mod:`repro.obs.metrics` — counters, gauges, wall-time timers and
  histograms in a snapshot-able :class:`MetricsRegistry`;
* :mod:`repro.obs.manifest` — provenance (:class:`RunManifest`) attached
  to every executed sweep cell and serialised next to cached results;
* :mod:`repro.obs.log` — structured (optionally JSON-lines) logging behind
  the CLI's ``--log-level``/``-v``/``--log-json`` flags;
* :mod:`repro.obs.profile` — per-stage wall-time attribution behind the
  ``repro-coherence profile`` verb;
* :mod:`repro.obs.telemetry` — distributed sweep telemetry: hierarchical
  spans joined across worker processes, atomic status snapshots and the
  ``repro-coherence status`` live view;
* :mod:`repro.obs.benchgate` — the benchmark-history ledger and
  regression gate behind ``tools/bench_history.py``.

See ``docs/observability.md`` for the full walkthrough.
"""

from .log import JsonFormatter, TextFormatter, fields, get_logger, setup_logging
from .manifest import RunManifest, collect_manifest, peak_rss_kb
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    get_registry,
    set_registry,
)
from .probe import ChromeTraceSink, CollectingProbe, JsonlSink, ReferenceProbe
from .profile import ProfileReport, STAGES, profile_spec
from .telemetry import (
    SPAN_KINDS,
    Span,
    SpanRecorder,
    read_status,
    render_status,
    write_status,
)

__all__ = [
    "JsonFormatter",
    "TextFormatter",
    "fields",
    "get_logger",
    "setup_logging",
    "RunManifest",
    "collect_manifest",
    "peak_rss_kb",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "get_registry",
    "set_registry",
    "ChromeTraceSink",
    "CollectingProbe",
    "JsonlSink",
    "ReferenceProbe",
    "ProfileReport",
    "STAGES",
    "profile_spec",
    "SPAN_KINDS",
    "Span",
    "SpanRecorder",
    "read_status",
    "render_status",
    "write_status",
]
