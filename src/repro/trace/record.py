"""Memory-reference trace records.

The unit of input to every simulation in this library is a *trace record*: a
single memory reference issued by one CPU on behalf of one process.  The
record format mirrors what the paper's ATUM traces provide (Section 4.4):
interleaved per-CPU address streams annotated with CPU number and process
identifier, so that a reference can be attributed either to a *processor* or
to a *process* when classifying sharing.

Two extra annotations are carried that the paper derives from the trace
content rather than the raw format:

* ``is_lock_spin`` marks reads that are the "test" part of a
  test-and-test-and-set spin (used by the Section 5.2 experiment, which
  excludes lock tests from the trace).
* ``is_os`` marks operating-system references (Table 3 reports user/system
  reference splits).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["AccessType", "TraceRecord", "DEFAULT_BLOCK_SIZE", "block_of"]

#: Block size used throughout the paper: 4 words of 4 bytes (Section 4).
DEFAULT_BLOCK_SIZE = 16

#: Bytes per machine word (VAX word as used in the paper's bus model).
WORD_SIZE = 4

#: Words per block under the default block size.
WORDS_PER_BLOCK = DEFAULT_BLOCK_SIZE // WORD_SIZE


class AccessType(enum.IntEnum):
    """Kind of memory reference a trace record describes."""

    INSTR = 0  #: instruction fetch (never generates coherence traffic, Sec 4)
    READ = 1  #: data read
    WRITE = 2  #: data write

    @property
    def is_data(self) -> bool:
        """True for data reads and writes (instruction fetches excluded)."""
        return self is not AccessType.INSTR


@dataclass(frozen=True)
class TraceRecord:
    """One memory reference in a multiprocessor address trace.

    Attributes:
        cpu: index of the physical processor that issued the reference.
        pid: identifier of the process that was running on ``cpu``.
        access: the reference type (instruction fetch, data read, data write).
        address: byte address referenced.
        is_lock_spin: True when the reference is a spin read on a lock
            (the "test" in test-and-test-and-set).
        is_os: True when the reference was issued by operating-system code.
    """

    cpu: int
    pid: int
    access: AccessType
    address: int
    is_lock_spin: bool = False
    is_os: bool = False

    def block(self, block_size: int = DEFAULT_BLOCK_SIZE) -> int:
        """Return the block number this reference falls in."""
        return self.address // block_size

    @property
    def is_instruction(self) -> bool:
        return self.access is AccessType.INSTR

    @property
    def is_read(self) -> bool:
        return self.access is AccessType.READ

    @property
    def is_write(self) -> bool:
        return self.access is AccessType.WRITE


def block_of(address: int, block_size: int = DEFAULT_BLOCK_SIZE) -> int:
    """Map a byte address to its block number."""
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    return address // block_size
