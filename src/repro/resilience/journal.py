"""The sweep journal: a crash-safe, append-only record of per-cell outcomes.

Completed cell *results* already land in the
:class:`~repro.runner.cache.ResultCache` as they finish; the journal adds
the missing half of crash-safety: a durable record of which cells
**succeeded, failed (and why), or never ran**, so a killed sweep can be
resumed with ``repro-coherence sweep --resume`` — journaled successes are
served from the cache with zero re-simulation and only the failures are
re-dispatched.

Format: one JSON object per line in ``<sweep-key>.journal.jsonl``, where
the sweep key hashes the sorted cache keys of the grid (same grid → same
journal, regardless of axis ordering).  Events::

    {"event": "sweep-start", "cells": N, "jobs": J, "ts": ...}
    {"event": "cell", "key": "<cache-key>", "cell": "<cell-id>",
     "status": "ok"|"failed", "cached": bool, "attempts": n,
     "elapsed_s": s, "error": {...}?, "ts": ...}
    {"event": "sweep-end", "status": "finished"|"failed"|"interrupted", ...}

Appends are single ``write()`` calls of one line to a file opened with
``O_APPEND``, flushed and fsynced — atomic for any realistic line length,
so a journal written by a SIGKILL'd sweep has at most one torn final line.
:meth:`SweepJournal.load` tolerates exactly that: undecodable lines are
skipped, and the **last** record per cache key wins (a resumed sweep
appends fresh records to the same file).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..obs.log import fields, get_logger
from .errors import RunError

__all__ = ["SweepJournal", "append_jsonl", "load_jsonl"]

logger = get_logger("resilience.journal")

JOURNAL_SUFFIX = ".journal.jsonl"


def append_jsonl(path: Union[str, Path], record: dict) -> None:
    """Durably append one JSON record as a single line to ``path``.

    One ``write()`` to an ``O_APPEND`` descriptor followed by ``fsync``:
    concurrent writers interleave whole lines, and a SIGKILL mid-append
    leaves at most one torn final line — exactly what :func:`load_jsonl`
    tolerates.  This is the write half of every crash-safe journal in the
    repo (the per-sweep :class:`SweepJournal` and the service's
    :class:`~repro.service.journal.ServiceJournal`).
    """
    line = json.dumps(record, sort_keys=True, default=str) + "\n"
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode("utf-8"))
        os.fsync(fd)
    finally:
        os.close(fd)


def load_jsonl(path: Union[str, Path]) -> Tuple[List[dict], int]:
    """Every decodable JSON-object line of ``path``, plus the torn count.

    The read half of the crash-safe journal contract: undecodable or
    non-object lines (a writer killed mid-append) are skipped and counted,
    never raised — a journal with a torn tail loads up to its last intact
    record.  A missing file is simply an empty journal.
    """
    records: List[dict] = []
    torn = 0
    try:
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    torn += 1
                    continue
                if isinstance(record, dict):
                    records.append(record)
                else:
                    torn += 1
    except FileNotFoundError:
        return [], 0
    return records, torn


class SweepJournal:
    """Append-only JSONL record of one sweep grid's per-cell outcomes."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    # -- construction ---------------------------------------------------------

    @staticmethod
    def sweep_key(cache_keys: Iterable[str]) -> str:
        """Stable identity of a grid: hash of its sorted cell cache keys."""
        token = "|".join(sorted(cache_keys))
        return hashlib.sha256(token.encode("utf-8")).hexdigest()[:40]

    @classmethod
    def for_sweep(
        cls, directory: Union[str, Path], cache_keys: Iterable[str]
    ) -> "SweepJournal":
        """The journal for this grid, living next to its cached results."""
        key = cls.sweep_key(cache_keys)
        return cls(Path(directory) / f"{key}{JOURNAL_SUFFIX}")

    def exists(self) -> bool:
        return self.path.exists()

    # -- writing --------------------------------------------------------------

    def _append(self, record: dict) -> None:
        append_jsonl(self.path, record)

    def record_start(self, cells: int, jobs: int) -> None:
        self._append(
            {"event": "sweep-start", "cells": cells, "jobs": jobs,
             "ts": time.time()}
        )

    def record_cell(
        self,
        key: str,
        cell: str,
        status: str,
        cached: bool = False,
        attempts: int = 1,
        elapsed: float = 0.0,
        error: Optional[RunError] = None,
    ) -> None:
        record = {
            "event": "cell",
            "key": key,
            "cell": cell,
            "status": status,
            "cached": cached,
            "attempts": attempts,
            "elapsed_s": round(elapsed, 6),
            "ts": time.time(),
        }
        if error is not None:
            record["error"] = error.to_dict()
        self._append(record)

    def record_end(self, status: str, ok: int, failed: int) -> None:
        self._append(
            {"event": "sweep-end", "status": status, "ok": ok,
             "failed": failed, "ts": time.time()}
        )

    # -- reading --------------------------------------------------------------

    def load(self) -> Dict[str, dict]:
        """Last-wins cell records keyed by cache key (empty if no journal).

        Torn or undecodable lines (a writer killed mid-append) are counted,
        logged and skipped — they never poison a resume.
        """
        records: Dict[str, dict] = {}
        lines, torn = load_jsonl(self.path)
        for record in lines:
            if record.get("event") == "cell" and isinstance(
                record.get("key"), str
            ):
                records[record["key"]] = record
        if torn:
            logger.warning(
                "journal has undecodable lines (torn writes); skipped",
                extra=fields(path=str(self.path), torn=torn),
            )
        return records

    def successes(self) -> Dict[str, dict]:
        """Journaled cells whose last record says the cell completed."""
        return {
            key: record
            for key, record in self.load().items()
            if record.get("status") == "ok"
        }

    def failures(self) -> Dict[str, dict]:
        """Journaled cells whose last record says the cell failed."""
        return {
            key: record
            for key, record in self.load().items()
            if record.get("status") == "failed"
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SweepJournal({str(self.path)!r})"
