"""Fault-tolerant sweep execution: isolation, retries, journal, fault injection.

The resilience layer sits between the sweep runner and the operating
system, and turns "one bad cell kills the sweep" into "one bad cell is a
structured failure record":

* :mod:`~repro.resilience.errors` — :class:`RunError` (per-cell failure
  record), :class:`CellFailure` (fail-fast abort), :class:`SweepInterrupted`
  (SIGINT with partial results).
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy`: bounded attempts,
  exponential backoff, deterministic (hash-seeded) jitter.
* :mod:`~repro.resilience.executor` — :class:`CellExecutor`: one child
  process per cell attempt, kill-based timeouts, crash detection.
* :mod:`~repro.resilience.journal` — :class:`SweepJournal`: append-only
  JSONL record of per-cell outcomes powering ``sweep --resume``.
* :mod:`~repro.resilience.faults` — :class:`FaultPlan`: seeded,
  deterministic fault injection at the worker, parent and cache seams.

See ``docs/robustness.md`` for the failure model and semantics.

Import discipline: :mod:`repro.runner.sweep` imports resilience
*submodules* directly, and resilience submodules import runner
*submodules* (never the packages), so the mutual dependency between the
two packages resolves during either import order.
"""

from .errors import ERROR_KINDS, CellFailure, RunError, SweepInterrupted
from .executor import CellEvent, CellExecutor
from .faults import (
    CACHE_KINDS,
    FAULT_KINDS,
    PARENT_KINDS,
    SERVICE_KINDS,
    WORKER_KINDS,
    FaultPlan,
    FaultSpec,
    FaultyCache,
    InjectedFault,
)
from .journal import SweepJournal, append_jsonl, load_jsonl
from .retry import RetryPolicy

__all__ = [
    "CACHE_KINDS",
    "ERROR_KINDS",
    "FAULT_KINDS",
    "PARENT_KINDS",
    "SERVICE_KINDS",
    "WORKER_KINDS",
    "CellEvent",
    "CellExecutor",
    "CellFailure",
    "FaultPlan",
    "FaultSpec",
    "FaultyCache",
    "InjectedFault",
    "RetryPolicy",
    "RunError",
    "SweepInterrupted",
    "SweepJournal",
    "append_jsonl",
    "load_jsonl",
]
