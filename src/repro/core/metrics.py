"""Derived performance metrics from the paper's Section 5.

* the decomposition of the miss rate into its *native* component (first
  fetch of each block into each cache, measured by Dragon, which never
  invalidates) and its *coherence* component (invalidation-induced
  refetches) — the paper finds consistency misses are 36% of the Dir0B
  miss rate;
* the end-of-Section-5 estimate of how many effective processors a single
  shared bus can sustain given a scheme's bus cycles per reference.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MissRateDecomposition",
    "decompose_miss_rate",
    "effective_processors",
]


@dataclass(frozen=True)
class MissRateDecomposition:
    """Split of a scheme's data miss rate into native + coherence parts.

    All values are percentages of total references.
    """

    scheme_miss_rate: float
    native_miss_rate: float

    @property
    def coherence_miss_rate(self) -> float:
        """Miss-rate component due to consistency-related invalidations."""
        return max(0.0, self.scheme_miss_rate - self.native_miss_rate)

    @property
    def coherence_share(self) -> float:
        """Fraction of the scheme's misses that are coherence-induced."""
        if self.scheme_miss_rate == 0:
            return 0.0
        return self.coherence_miss_rate / self.scheme_miss_rate


def decompose_miss_rate(
    scheme_miss_rate: float, dragon_miss_rate: float
) -> MissRateDecomposition:
    """Decompose a miss rate using Dragon's as the native rate.

    "Because there are no invalidations in the Dragon scheme, its miss rate
    is the native miss rate for these traces" (Section 5).  Both arguments
    are data miss rates in percent of all references, first references
    excluded or included consistently on both sides.
    """
    if scheme_miss_rate < 0 or dragon_miss_rate < 0:
        raise ValueError("miss rates must be non-negative")
    return MissRateDecomposition(
        scheme_miss_rate=scheme_miss_rate, native_miss_rate=dragon_miss_rate
    )


def effective_processors(
    cycles_per_reference: float,
    processor_mips: float = 10.0,
    bus_cycle_ns: float = 100.0,
    refs_per_instruction: float = 2.0,
) -> float:
    """Upper bound on processors one bus sustains (end of Section 5).

    ``cycles_per_reference`` is measured over *all* references, and "on
    average each instruction in the traces makes one data reference", so an
    instruction generates two references (its fetch plus one data access) —
    hence ``refs_per_instruction`` defaults to 2.  A 10 MIPS processor at
    0.03 cycles/reference then needs a bus cycle every 15 instructions
    (1500 ns), and a 100 ns bus sustains about 15 effective processors —
    "an optimistic upper bound" since instruction misses, finite caches and
    contention are excluded.
    """
    if cycles_per_reference <= 0:
        raise ValueError("cycles_per_reference must be positive")
    if processor_mips <= 0 or bus_cycle_ns <= 0:
        raise ValueError("processor_mips and bus_cycle_ns must be positive")
    refs_per_second = processor_mips * 1e6 * refs_per_instruction
    bus_cycles_per_second = 1e9 / bus_cycle_ns
    demand_per_processor = refs_per_second * cycles_per_reference
    return bus_cycles_per_second / demand_per_processor
