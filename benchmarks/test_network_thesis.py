"""The paper's thesis, quantified: directories scale, snooping does not.

"Attempts to scale [snoopy schemes] by replacing the bus with a higher
bandwidth communication network will not be successful since the
consistency protocol relies on low-latency broadcasts" — and conversely,
directory messages "can be easily sent over any arbitrary interconnection
network" (Sections 1-2).

This bench re-prices the measured 4-processor operation counts on omega and
mesh networks from 4 to 256 nodes.  Broadcasts (and snooping write-
visibility) are emulated with n-1 directed messages; directed invalidations
pay only message latency.  The result is the crossover the paper predicts
but could not measure: DirnNB's cost grows with log(n) while WTI's and
Dragon's explode, and the full-map directory is the cheapest scheme on
every large machine.
"""

from repro.analysis.network import network_scaling
from repro.interconnect.network import Topology

SCHEMES = ("dirnnb", "dir1b", "dir0b", "wti", "dragon")


def test_network_thesis(benchmark, comparison, save_result):
    def run():
        return {
            topology: network_scaling(comparison, SCHEMES, topology=topology)
            for topology in (Topology.OMEGA, Topology.MESH2D)
        }

    results = benchmark(run)
    lines = []
    for scaling in results.values():
        lines.append(scaling.render())
        lines.append("")
    save_result("network_thesis", "\n".join(lines))

    for scaling in results.values():
        # Directed-message schemes grow slowest; the snoopy schemes explode.
        assert scaling.growth("dirnnb") < 10
        assert scaling.growth("dragon") > 20
        assert scaling.growth("wti") > 20
        # The broadcast-bit hybrid sits between the full map and Dir0B.
        assert (
            scaling.growth("dirnnb")
            <= scaling.growth("dir1b")
            <= scaling.growth("dir0b")
        )
        # The paper's conclusion: at scale, the directory wins outright.
        assert scaling.cheapest_at(256) == "dirnnb"
        # At bus-scale machines the schemes are still comparable (within
        # ~2x) — "their performance in a small-scale multiprocessor is
        # acceptable".
        at4 = [scaling.cycles[s][4] for s in ("dirnnb", "dir0b", "dragon")]
        assert max(at4) < 2.5 * min(at4)
