"""On-disk result cache for sweep cells.

Results are pickled one file per cache key under a directory the caller
chooses.  The key (see :meth:`repro.runner.spec.RunSpec.cache_key`) hashes
everything that determines the result, so a hit can be replayed verbatim;
anything unreadable — truncated file, stale pickle, wrong type — is treated
as a miss and resimulated rather than trusted.

Writes go through a temp file + :func:`os.replace` so concurrent sweeps
sharing a cache directory never observe half-written entries.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Optional, Union

from ..core.simulator import SimulationResult

__all__ = ["ResultCache"]


class ResultCache:
    """A directory of pickled :class:`SimulationResult`s, keyed by spec hash."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: lookups that returned a usable result
        self.hits = 0
        #: lookups that found nothing usable
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, or None (counted as hit/miss)."""
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.misses += 1
            return None
        if not isinstance(result, SimulationResult):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Store ``result`` under ``key`` atomically."""
        path = self.path_for(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        with tmp.open("wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        for path in self.directory.glob("*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when none yet)."""
        lookups = self.hits + self.misses
        if lookups == 0:
            return 0.0
        return self.hits / lookups

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ResultCache({str(self.directory)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
