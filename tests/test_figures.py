"""Unit tests for the figure builders (paper Figures 1-5)."""

import pytest

from conftest import trace_of
from repro.analysis.figures import figure1, figure2, figure3, figure4, figure5
from repro.core.comparison import run_comparison


@pytest.fixture(scope="module")
def comparison():
    a = trace_of(
        [(0, "r", 0), (1, "r", 0), (2, "r", 0), (0, "w", 0), (1, "r", 0)]
        + [(3, "w", 16), (3, "w", 16), (2, "r", 16)]
    )
    b = trace_of([(0, "r", 0), (0, "w", 0), (1, "w", 0), (2, "r", 32)])
    factories = {"A": lambda: iter(list(a)), "B": lambda: iter(list(b))}
    return run_comparison(
        ("dir1nb", "wti", "dir0b", "dragon"), factories, n_caches=4
    )


class TestFigure1:
    def test_percentages_sum_to_hundred(self, comparison):
        figure = figure1(comparison)
        assert sum(figure.percentages) == pytest.approx(100.0)

    def test_share_and_mean_consistent(self, comparison):
        figure = figure1(comparison)
        assert 0.0 <= figure.share_at_most_one <= 1.0
        assert figure.mean_fanout >= 0.0

    def test_render_mentions_paper_claim(self, comparison):
        assert "85%" in figure1(comparison).render()


class TestFigure2And3:
    def test_low_endpoint_is_pipelined(self, comparison):
        figure = figure2(comparison)
        for low, high in figure.series["average"]:
            assert low <= high  # non-pipelined always costs at least as much

    def test_figure3_has_one_series_per_trace(self, comparison):
        figure = figure3(comparison)
        assert set(figure.series) == {"A", "B"}

    def test_figure2_labels_match_schemes(self, comparison):
        figure = figure2(comparison)
        assert figure.labels == ["Dir1NB", "WTI", "Dir0B", "Dragon"]

    def test_render(self, comparison):
        assert "cycles/ref" in figure2(comparison).render()
        assert "Figure 3" in figure3(comparison).render()


class TestFigure4:
    def test_fractions_sum_to_one_for_nonzero_schemes(self, comparison):
        figure = figure4(comparison)
        for label in figure.labels:
            total = sum(figure.fractions[label].values())
            assert total == pytest.approx(1.0)

    def test_render(self, comparison):
        text = figure4(comparison).render()
        assert "Dragon" in text


class TestFigure5:
    def test_per_transaction_costs_positive(self, comparison):
        values = figure5(comparison)
        assert set(values) == {"Dir1NB", "WTI", "Dir0B", "Dragon"}
        assert all(v > 0 for v in values.values())

    def test_wti_transactions_are_cheap(self, comparison):
        # Write-throughs are single-cycle, so WTI's average transaction is
        # small compared to Dir1NB's block moves.
        values = figure5(comparison)
        assert values["WTI"] < values["Dir1NB"]
