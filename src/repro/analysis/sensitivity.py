"""Sensitivity analyses: per-transaction overheads and finite cache sizes.

**Section 5.1 — fixed per-transaction overheads.**  The bus-cycles metric
counts only cycles the bus is busy with data; every real transaction also
pays cache-access, bus-controller and arbitration time.  Section 5.1 models
this as ``q`` extra cycles per bus transaction and observes that the
Dragon/Dir0B gap shrinks from 46% (q=0) to 12% (q=1), because Dragon
performs almost twice as many (cheap) transactions.

The paper's line for each scheme is ``cycles(q) = c0 + t · q`` with ``c0``
the bus cycles per reference and ``t`` the bus transactions per reference
(Dragon: 0.0336 + 0.0206·q; Dir0B: 0.0491 + 0.0114·q).

**Finite-geometry sensitivity.**  The paper simulates infinite caches so
that every miss is a coherence miss.  :func:`finite_sensitivity` relaxes
that assumption: it folds a sweep that includes finite set-associative
geometries into a cycles-per-reference vs cache-size table, showing how
displacement misses close (or widen) the gaps between schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.comparison import ComparisonResult
from ..core.simulator import SimulationResult
from ..interconnect.bus import BusCostModel
from ._defaults import _default_bus

__all__ = [
    "FiniteSensitivityTable",
    "OverheadLine",
    "finite_sensitivity",
    "overhead_lines",
    "relative_gap",
]


@dataclass(frozen=True)
class OverheadLine:
    """``cycles(q) = base + transactions_per_ref * q`` for one scheme."""

    scheme: str
    base: float
    transactions_per_ref: float

    def at(self, q: float) -> float:
        if q < 0:
            raise ValueError(f"q must be non-negative, got {q}")
        return self.base + self.transactions_per_ref * q

    def render(self) -> str:
        return (
            f"{self.scheme}: {self.base:.4f} + {self.transactions_per_ref:.4f}"
            "*q cycles/ref"
        )


def overhead_lines(
    comparison: ComparisonResult,
    schemes: Sequence[str] = ("dir0b", "dragon"),
    bus: Optional[BusCostModel] = None,
) -> Dict[str, OverheadLine]:
    """The Section 5.1 overhead lines for the requested schemes."""
    bus = _default_bus(bus)
    lines: Dict[str, OverheadLine] = {}
    for scheme in schemes:
        label = comparison.results[scheme][comparison.traces[0]].protocol_label
        lines[scheme] = OverheadLine(
            scheme=label,
            base=comparison.average_cycles(scheme, bus),
            transactions_per_ref=comparison.average_transactions_per_reference(
                scheme
            ),
        )
    return lines


def relative_gap(
    lines: Mapping[str, OverheadLine],
    slow: str = "dir0b",
    fast: str = "dragon",
    q: float = 0.0,
) -> float:
    """How many percent more cycles ``slow`` needs than ``fast`` at overhead q.

    The paper quotes 46% at q=0 shrinking to 12% at q=1.
    """
    fast_cycles = lines[fast].at(q)
    if fast_cycles == 0:
        raise ValueError("fast scheme has zero cycles; gap undefined")
    return 100.0 * (lines[slow].at(q) - fast_cycles) / fast_cycles


def _geometry_sort_key(geometry: str) -> Tuple[int, int]:
    """Order geometries by total blocks, infinite last."""
    if geometry == "inf":
        return (1, 0)
    sets, ways = geometry.split("x")
    return (0, int(sets) * int(ways))


@dataclass(frozen=True)
class FiniteSensitivityTable:
    """Trace-averaged bus cycles per reference vs cache geometry.

    One row per geometry (smallest cache first, infinite last), one column
    per scheme.  ``cycles[geometry][scheme]`` is the unweighted mean of
    pipelined-bus cycles per reference over the sweep's traces — the same
    averaging as :meth:`~repro.core.comparison.ComparisonResult.average_cycles`,
    so the infinite row matches the paper's Figure 2 bars.
    """

    schemes: Tuple[str, ...]
    geometries: Tuple[str, ...]
    cycles: Mapping[str, Mapping[str, float]]

    def render(self) -> str:
        header = f"{'geometry':<10}" + "".join(
            f"{scheme:>12}" for scheme in self.schemes
        )
        lines = [
            "Bus cycles per reference vs cache geometry (sets x ways, "
            "pipelined bus)",
            header,
            "-" * len(header),
        ]
        for geometry in self.geometries:
            row = self.cycles[geometry]
            lines.append(
                f"{geometry:<10}"
                + "".join(f"{row[scheme]:>12.6f}" for scheme in self.schemes)
            )
        return "\n".join(lines)


def finite_sensitivity(
    cells: Sequence[Tuple[str, Optional[str], SimulationResult]],
    bus: Optional[BusCostModel] = None,
) -> FiniteSensitivityTable:
    """Fold sweep cells into a cycles/ref vs cache-size table.

    ``cells`` is a sequence of ``(scheme, geometry_spec, result)`` triples —
    one per simulated (scheme, geometry, trace) cell, with ``None`` geometry
    meaning infinite caches.  Every (scheme, geometry) pair must cover the
    same number of traces; the table averages over them.
    """
    bus = _default_bus(bus)
    schemes: List[str] = []
    geometries: List[str] = []
    sums: Dict[Tuple[str, str], List[float]] = {}
    for scheme, geometry, result in cells:
        label = geometry or "inf"
        if scheme not in schemes:
            schemes.append(scheme)
        if label not in geometries:
            geometries.append(label)
        sums.setdefault((scheme, label), []).append(
            result.cycles_per_reference(bus)
        )
    if not sums:
        raise ValueError("at least one sweep cell is required")
    counts = {len(values) for values in sums.values()}
    if len(sums) != len(schemes) * len(geometries) or len(counts) != 1:
        raise ValueError(
            "finite sensitivity needs a full scheme x geometry cross "
            "product with the same traces in every cell"
        )
    geometries.sort(key=_geometry_sort_key)
    cycles = {
        geometry: {
            scheme: sum(sums[(scheme, geometry)]) / len(sums[(scheme, geometry)])
            for scheme in schemes
        }
        for geometry in geometries
    }
    return FiniteSensitivityTable(
        schemes=tuple(schemes), geometries=tuple(geometries), cycles=cycles
    )
