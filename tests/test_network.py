"""Tests for the interconnection-network cost models and scaling analysis."""

import pytest

from conftest import trace_of
from repro.core.comparison import run_comparison
from repro.analysis.network import network_scaling
from repro.interconnect.bus import BusOp
from repro.interconnect.network import NetworkModel, Topology, network_cost_model


class TestNetworkModel:
    def test_bus_and_crossbar_are_distance_one(self):
        for topology in (Topology.BUS, Topology.CROSSBAR):
            model = NetworkModel(topology=topology, n_nodes=64)
            assert model.average_hops == 1.0

    def test_omega_hops_are_logarithmic(self):
        assert NetworkModel(Topology.OMEGA, 64).average_hops == 6.0
        assert NetworkModel(Topology.OMEGA, 256).average_hops == 8.0

    def test_mesh_hops_scale_with_sqrt(self):
        model = NetworkModel(Topology.MESH2D, 256)
        assert model.average_hops == pytest.approx(2 * 16 / 3)

    def test_wormhole_message_cost(self):
        model = NetworkModel(Topology.OMEGA, 16)  # 4 hops
        assert model.directed_message_cycles(1) == 4.0
        assert model.directed_message_cycles(4) == 7.0

    def test_only_the_bus_broadcasts_in_hardware(self):
        assert NetworkModel(Topology.BUS, 16).has_hardware_broadcast
        for topology in (Topology.CROSSBAR, Topology.OMEGA, Topology.MESH2D):
            assert not NetworkModel(topology, 16).has_hardware_broadcast

    def test_broadcast_emulation_costs_n_minus_one_messages(self):
        model = NetworkModel(Topology.CROSSBAR, 16)
        assert model.broadcast_cycles(1) == 15 * model.directed_message_cycles(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(Topology.BUS, 1)
        with pytest.raises(ValueError):
            NetworkModel(Topology.BUS, 4, per_hop_cycles=0)
        with pytest.raises(ValueError):
            NetworkModel(Topology.BUS, 4).directed_message_cycles(0)


class TestNetworkCostModel:
    def test_every_op_priced(self):
        model = network_cost_model(NetworkModel(Topology.OMEGA, 16))
        for op in BusOp:
            assert model.cost_of(op) >= 0

    def test_overlapped_directory_check_stays_free(self):
        model = network_cost_model(NetworkModel(Topology.MESH2D, 64))
        assert model.cost_of(BusOp.DIR_CHECK_OVERLAPPED) == 0

    def test_directed_invalidate_is_size_insensitive_on_crossbar(self):
        small = network_cost_model(NetworkModel(Topology.CROSSBAR, 4))
        large = network_cost_model(NetworkModel(Topology.CROSSBAR, 256))
        assert small.cost_of(BusOp.INVALIDATE) == large.cost_of(BusOp.INVALIDATE)

    def test_broadcast_invalidate_grows_with_machine(self):
        small = network_cost_model(NetworkModel(Topology.OMEGA, 4))
        large = network_cost_model(NetworkModel(Topology.OMEGA, 256))
        assert large.cost_of(BusOp.BROADCAST_INVALIDATE) > 10 * small.cost_of(
            BusOp.BROADCAST_INVALIDATE
        )

    def test_three_hop_miss_costs_more_than_memory_miss(self):
        model = network_cost_model(NetworkModel(Topology.OMEGA, 16))
        assert model.cost_of(BusOp.CACHE_SUPPLY) > model.cost_of(BusOp.MEM_ACCESS)


class TestNetworkScaling:
    @pytest.fixture(scope="class")
    def comparison(self):
        trace = trace_of(
            [(0, "r", 0), (1, "r", 0), (0, "w", 0), (1, "r", 0), (1, "w", 0)]
            + [(2, "r", 16), (2, "w", 16), (3, "r", 16), (0, "w", 16)]
        )
        return run_comparison(
            ("dirnnb", "dir0b", "wti", "dragon"),
            {"T": lambda: iter(list(trace))},
            n_caches=4,
        )

    def test_directed_schemes_grow_slowest(self, comparison):
        scaling = network_scaling(
            comparison, ("dirnnb", "dir0b", "wti", "dragon")
        )
        assert scaling.growth("dirnnb") < scaling.growth("dir0b")
        assert scaling.growth("dirnnb") < scaling.growth("dragon")
        assert scaling.growth("dirnnb") < scaling.growth("wti")

    def test_directory_is_cheapest_at_scale(self, comparison):
        scaling = network_scaling(
            comparison, ("dirnnb", "dir0b", "wti", "dragon")
        )
        assert scaling.cheapest_at(256) == "dirnnb"

    def test_costs_increase_monotonically_with_size(self, comparison):
        scaling = network_scaling(comparison, ("dirnnb",))
        values = [scaling.cycles["dirnnb"][n] for n in scaling.node_counts]
        assert values == sorted(values)

    def test_render(self, comparison):
        scaling = network_scaling(comparison, ("dirnnb", "dragon"))
        text = scaling.render()
        assert "cheapest at" in text and "omega" in text

    def test_requires_schemes(self, comparison):
        with pytest.raises(ValueError):
            network_scaling(comparison, ())
