"""Shared default-bus resolution for the analysis layer.

Every analysis entry point that prices counters accepts
``bus: Optional[BusCostModel] = None`` and resolves it through
:func:`_default_bus`, so the whole layer agrees on one default pricing —
the paper's pipelined bus, loaded from the bundled characterization.
"""

from __future__ import annotations

from typing import Optional

from ..interconnect.bus import BusCostModel, pipelined_bus

__all__ = ["_default_bus"]


def _default_bus(bus: Optional[BusCostModel] = None) -> BusCostModel:
    """Resolve an optional bus argument to the layer-wide default."""
    return bus if bus is not None else pipelined_bus()
