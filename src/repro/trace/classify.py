"""Sharing-pattern classification of trace blocks.

The paper explains its results through sharing structure — lock spinning,
read sharing, "most blocks that are written into are present in only a
small number of other caches" — without naming the patterns.  The follow-on
literature (Weber & Gupta's invalidation-pattern taxonomy, Agarwal's later
work) made the categories explicit; this module classifies every data block
of a trace into that vocabulary:

``PRIVATE``
    touched by a single process only — the bulk of all blocks.
``READ_ONLY``
    shared but never written (code tables, netlists).
``SYNCHRONIZATION``
    lock words: dominated by marked spin reads with multiple writers.
``PRODUCER_CONSUMER``
    written by exactly one process, read by others (mailboxes).
``MIGRATORY``
    written by several processes, but each writer read or wrote the block
    immediately before (read-modify-write hand-offs) — the pattern that
    makes a single invalidation cover most writes.
``READ_WRITE``
    everything else: irregular multi-writer sharing.

The summary explains *why* the paper's Figure 1 looks the way it does: the
classes map directly onto invalidation fan-outs (private/migratory -> 0-1,
producer/consumer -> #consumers, synchronisation -> #spinners).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Set

from .record import DEFAULT_BLOCK_SIZE, AccessType, TraceRecord

__all__ = ["BlockClass", "BlockProfile", "SharingProfile", "classify_blocks"]


class BlockClass(enum.Enum):
    PRIVATE = "private"
    READ_ONLY = "read-only"
    SYNCHRONIZATION = "synchronization"
    PRODUCER_CONSUMER = "producer-consumer"
    MIGRATORY = "migratory"
    READ_WRITE = "read-write"


@dataclass
class BlockProfile:
    """Per-block access statistics gathered in one pass."""

    block: int
    readers: Set[int] = field(default_factory=set)
    writers: Set[int] = field(default_factory=set)
    reads: int = 0
    writes: int = 0
    spin_reads: int = 0
    #: writes whose writer was also the most recent previous accessor
    #: (evidence of read-modify-write hand-offs)
    chained_writes: int = 0
    _last_accessor: int = field(default=-1, repr=False)

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def sharers(self) -> Set[int]:
        return self.readers | self.writers

    def note(self, pid: int, access: AccessType, is_spin: bool) -> None:
        if access is AccessType.READ:
            self.reads += 1
            self.readers.add(pid)
            if is_spin:
                self.spin_reads += 1
        else:
            self.writes += 1
            self.writers.add(pid)
            if self._last_accessor == pid:
                self.chained_writes += 1
        self._last_accessor = pid

    def classify(self) -> BlockClass:
        if len(self.sharers) <= 1:
            return BlockClass.PRIVATE
        if not self.writers:
            return BlockClass.READ_ONLY
        if self.spin_reads > 0.5 * self.reads and len(self.writers) > 1:
            return BlockClass.SYNCHRONIZATION
        if len(self.writers) == 1:
            return BlockClass.PRODUCER_CONSUMER
        if self.writes and self.chained_writes >= 0.6 * self.writes:
            return BlockClass.MIGRATORY
        return BlockClass.READ_WRITE


@dataclass(frozen=True)
class SharingProfile:
    """Whole-trace sharing composition."""

    block_counts: Mapping[BlockClass, int]
    access_counts: Mapping[BlockClass, int]
    total_blocks: int
    total_accesses: int

    def block_share(self, block_class: BlockClass) -> float:
        if self.total_blocks == 0:
            return 0.0
        return self.block_counts.get(block_class, 0) / self.total_blocks

    def access_share(self, block_class: BlockClass) -> float:
        if self.total_accesses == 0:
            return 0.0
        return self.access_counts.get(block_class, 0) / self.total_accesses

    def render(self) -> str:
        lines = [
            "Sharing composition (data blocks / data accesses):",
            f"  {'class':<18} {'blocks':>8} {'%blk':>6} {'accesses':>10} {'%acc':>6}",
        ]
        for block_class in BlockClass:
            blocks = self.block_counts.get(block_class, 0)
            accesses = self.access_counts.get(block_class, 0)
            lines.append(
                f"  {block_class.value:<18} {blocks:>8} "
                f"{100 * self.block_share(block_class):>5.1f}% "
                f"{accesses:>10} {100 * self.access_share(block_class):>5.1f}%"
            )
        return "\n".join(lines)


def classify_blocks(
    trace: Iterable[TraceRecord],
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Dict[int, BlockProfile]:
    """One-pass per-block access profiling (data references only)."""
    profiles: Dict[int, BlockProfile] = {}
    for record in trace:
        if record.access is AccessType.INSTR:
            continue
        block = record.address // block_size
        profile = profiles.get(block)
        if profile is None:
            profile = BlockProfile(block=block)
            profiles[block] = profile
        profile.note(record.pid, record.access, record.is_lock_spin)
    return profiles


def sharing_profile(profiles: Dict[int, BlockProfile]) -> SharingProfile:
    """Aggregate per-block profiles into the trace-level composition."""
    block_counts: Dict[BlockClass, int] = {}
    access_counts: Dict[BlockClass, int] = {}
    total_accesses = 0
    for profile in profiles.values():
        block_class = profile.classify()
        block_counts[block_class] = block_counts.get(block_class, 0) + 1
        access_counts[block_class] = (
            access_counts.get(block_class, 0) + profile.accesses
        )
        total_accesses += profile.accesses
    return SharingProfile(
        block_counts=block_counts,
        access_counts=access_counts,
        total_blocks=len(profiles),
        total_accesses=total_accesses,
    )
