"""Unit tests for the bus-contention queueing model."""

import pytest

from repro.analysis.contention import (
    BusContentionModel,
    knee_processors,
    speedup_curve,
)


def model(cycles=0.05, **kwargs):
    return BusContentionModel(cycles_per_reference=cycles, **kwargs)


class TestDemand:
    def test_demand_fraction(self):
        # 10 MIPS x 2 refs/instr x 0.05 cyc/ref = 1M cycles/s of a 10M-cycle bus.
        assert model().demand_fraction == pytest.approx(0.1)

    def test_utilization_scales_linearly_until_saturation(self):
        m = model()
        assert m.utilization(4) == pytest.approx(0.4)
        assert m.utilization(100) == 1.0  # clamped

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            model(cycles=0)
        with pytest.raises(ValueError):
            model(processor_mips=0)
        with pytest.raises(ValueError):
            model().utilization(-1)
        with pytest.raises(ValueError):
            model().effective_speed(0)


class TestEffectiveSpeed:
    def test_single_processor_is_nearly_full_speed(self):
        assert model().effective_speed(1) > 0.95

    def test_speed_decreases_with_processors(self):
        m = model()
        speeds = [m.effective_speed(n) for n in (1, 4, 16, 64)]
        assert speeds == sorted(speeds, reverse=True)

    def test_fixed_point_is_self_consistent(self):
        m = model()
        for n in (1, 4, 10, 40):
            s = m.effective_speed(n)
            u = n * s * m.demand_fraction
            assert u < 1.0
            assert s == pytest.approx(
                1.0 / (1.0 - m.demand_fraction + m.demand_fraction / (1.0 - u)),
                rel=1e-9,
            )

    def test_zero_demand_runs_full_speed(self):
        # cycles can't be zero, but a tiny value behaves like no contention.
        m = model(cycles=1e-9)
        assert m.effective_speed(1000) == pytest.approx(1.0, abs=1e-3)


class TestSpeedupCurve:
    def test_saturates_at_inverse_demand(self):
        m = model()  # demand 0.1 -> asymptote 10
        curve = speedup_curve(m, (1, 8, 64, 512))
        assert curve[512] < 10.0
        assert curve[512] > 9.5

    def test_monotone_nondecreasing(self):
        curve = speedup_curve(model(), (1, 2, 4, 8, 16, 32))
        values = list(curve.values())
        assert values == sorted(values)

    def test_knee_near_inverse_demand(self):
        # The marginal-speedup knee sits near the saturation point.
        assert 6 <= knee_processors(model()) <= 14

    def test_knee_with_paper_traffic_matches_paper_estimate(self):
        # Dragon-level traffic (0.03-0.036 cyc/ref): the paper estimates
        # ~15 effective processors; the queueing knee agrees.
        knee = knee_processors(model(cycles=0.03))
        assert 10 <= knee <= 20

    def test_knee_threshold_validated(self):
        with pytest.raises(ValueError):
            knee_processors(model(), marginal_threshold=0)
