"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

#: Run everything on minuscule traces so the CLI tests stay fast.
FAST = ["--scale", "512"]


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--schemes", "nonesuch"])

    def test_scale_parsed(self):
        args = build_parser().parse_args(["--scale", "32", "table4"])
        assert args.scale == 32.0


class TestCommands:
    def test_compare(self, capsys):
        assert main(FAST + ["compare", "--schemes", "dir0b", "dragon"]) == 0
        out = capsys.readouterr().out
        assert "dir0b" in out and "pipelined" in out

    def test_table4(self, capsys):
        assert main(FAST + ["table4"]) == 0
        assert "rm-blk-cln" in capsys.readouterr().out

    def test_table5(self, capsys):
        assert main(FAST + ["table5"]) == 0
        assert "cumulative" in capsys.readouterr().out

    def test_figure1(self, capsys):
        assert main(FAST + ["figure1"]) == 0
        assert "%" in capsys.readouterr().out

    def test_spinlock(self, capsys):
        assert main(FAST + ["spinlock"]) == 0
        assert "Dir1NB" in capsys.readouterr().out

    def test_trace_stats(self, capsys):
        assert main(FAST + ["trace-stats"]) == 0
        out = capsys.readouterr().out
        assert "POPS" in out and "THOR" in out and "PERO" in out

    def test_storage(self, capsys):
        assert main(["storage", "--caches", "4", "64"]) == 0
        out = capsys.readouterr().out
        assert "Dir0B" in out

    def test_export_trace_text(self, tmp_path, capsys):
        path = tmp_path / "pops.txt"
        assert main(FAST + ["export-trace", "POPS", str(path)]) == 0
        assert path.exists()
        assert "wrote" in capsys.readouterr().out

    def test_export_trace_binary_round_trips(self, tmp_path):
        from repro.trace.atum import read_binary

        path = tmp_path / "pero.bin"
        main(FAST + ["export-trace", "PERO", str(path), "--format", "binary"])
        records = list(read_binary(path))
        assert len(records) > 1000

    def test_classify(self, capsys):
        assert main(FAST + ["classify", "POPS"]) == 0
        out = capsys.readouterr().out
        assert "private" in out and "synchronization" in out

    def test_validate(self, capsys):
        assert main(FAST + ["validate", "dir0b"]) == 0
        assert "coherent" in capsys.readouterr().out

    def test_modelcheck_ok(self, capsys):
        assert main(["modelcheck", "dragon", "--depth", "4"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_timed(self, capsys):
        assert main(FAST + ["timed", "dir0b", "--q", "2"]) == 0
        out = capsys.readouterr().out
        assert "bus util" in out

    def test_nonpositive_scale_rejected(self, capsys):
        assert main(["--scale", "-1", "table4"]) == 2
        assert "--scale must be positive" in capsys.readouterr().err

    def test_nonpositive_jobs_rejected(self, capsys):
        assert main(FAST + ["--jobs", "0", "table4"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err


#: Sweep runs shrink the grid further: two schemes, tiny traces.
SWEEP = ["sweep", "--schemes", "dir0b", "dragon"]


class TestSweepCommand:
    def test_cold_run_prints_cells_and_tables(self, capsys):
        assert main(FAST + SWEEP) == 0
        captured = capsys.readouterr()
        assert "cyc/ref pipe" in captured.out
        assert "Table 4" in captured.out and "Table 5" in captured.out
        assert "cached" in captured.err and "refs/sec" in captured.err

    def test_jobs_1_and_2_produce_identical_output(self, capsys):
        assert main(FAST + ["--jobs", "1"] + SWEEP) == 0
        serial = capsys.readouterr().out
        assert main(FAST + ["--jobs", "2"] + SWEEP) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_warm_cache_run_hits_cache_with_identical_output(
        self, tmp_path, capsys
    ):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert main(FAST + cache + SWEEP) == 0
        cold = capsys.readouterr()
        assert "(6 simulated, 0 cached, 0 failed)" in cold.err
        assert main(FAST + cache + SWEEP) == 0
        warm = capsys.readouterr()
        assert "(0 simulated, 6 cached, 0 failed)" in warm.err
        assert "6 hits" in warm.err
        assert warm.out == cold.out

    def test_multi_block_size_grid_skips_paper_tables(self, capsys):
        assert main(
            FAST
            + [
                "sweep",
                "--schemes",
                "dir0b",
                "--traces",
                "POPS",
                "--block-sizes",
                "16",
                "32",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 4" not in out  # grid has an extra axis
        assert out.count("dir0b") == 2  # one cell row per block size

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--schemes", "nonesuch"])

    def test_misspelt_scheme_gets_did_you_mean(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(FAST + ["sweep", "--schemes", "dir0bb"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown protocol 'dir0bb' (did you mean 'dir0b'?)" in err

    def test_bad_geometry_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(FAST + ["sweep", "--geometries", "64y4"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "bad cache geometry '64y4': expected SETSxWAYS" in err

    def test_finite_geometry_grid_identical_across_jobs(self, capsys):
        grid = [
            "sweep",
            "--schemes",
            "dir0b",
            "--traces",
            "POPS",
            "--geometries",
            "8x2",
            "inf",
        ]
        assert main(FAST + ["--jobs", "1"] + grid) == 0
        serial = capsys.readouterr().out
        assert main(FAST + ["--jobs", "2"] + grid) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel
        assert "8x2" in serial and "inf" in serial

    def test_nonpositive_block_size_exits_cleanly(self, capsys):
        assert main(FAST + ["sweep", "--block-sizes", "-4"]) == 2
        assert "must be positive" in capsys.readouterr().err


class TestResilienceCLI:
    """The sweep resilience flags: --retries/--cell-timeout/--keep-going/
    --resume, the hidden --fault-plan, and the exit-code contract."""

    GRID = ["sweep", "--schemes", "dir0b", "--traces", "POPS", "THOR"]

    def write_plan(self, tmp_path, *faults):
        from repro.resilience import FaultPlan, FaultSpec

        path = tmp_path / "plan.json"
        FaultPlan(faults=tuple(FaultSpec(**f) for f in faults)).dump(path)
        return str(path)

    def test_keep_going_exits_3_with_failure_table(self, tmp_path, capsys):
        plan = self.write_plan(
            tmp_path,
            dict(cell="dir0b:POPS:*", kind="raise", attempt=None,
                 message="injected"),
        )
        code = main(
            FAST + self.GRID + ["--keep-going", "--fault-plan", plan]
        )
        assert code == 3
        captured = capsys.readouterr()
        assert "FAILED" in captured.out  # cell table marks the failed row
        assert "InjectedFault: injected" in captured.out  # failure table
        assert "1/2 cells failed" in captured.err

    def test_fail_fast_exits_1(self, tmp_path, capsys):
        plan = self.write_plan(
            tmp_path,
            dict(cell="dir0b:POPS:*", kind="raise", attempt=None),
        )
        assert main(FAST + self.GRID + ["--fault-plan", plan]) == 1
        assert "sweep cell dir0b:POPS" in capsys.readouterr().err

    def test_retries_recover_a_transient_fault(self, tmp_path, capsys):
        plan = self.write_plan(
            tmp_path, dict(cell="dir0b:POPS:*", kind="raise", attempt=1)
        )
        code = main(
            FAST + self.GRID + ["--retries", "1", "--fault-plan", plan]
        )
        assert code == 0
        assert "FAILED" not in capsys.readouterr().out

    def test_resume_finishes_only_failed_cells(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        plan = self.write_plan(
            tmp_path,
            dict(cell="dir0b:THOR:*", kind="raise", attempt=None),
        )
        assert main(
            FAST + cache + self.GRID + ["--keep-going", "--fault-plan", plan]
        ) == 3
        capsys.readouterr()
        # Resume without the fault: the good cell is a cache hit, the bad
        # one re-simulates, and the paper tables appear this time.
        assert main(FAST + cache + self.GRID + ["--resume"]) == 0
        captured = capsys.readouterr()
        assert "(1 simulated, 1 cached, 0 failed)" in captured.err
        assert "Table 4" in captured.out

    def test_journal_written_beside_the_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(
            FAST + ["--cache-dir", str(cache_dir)] + self.GRID
        ) == 0
        assert list(cache_dir.glob("*.journal.jsonl"))

    def test_injected_interrupt_exits_130_with_partial_results(
        self, tmp_path, capsys
    ):
        cache_dir = tmp_path / "cache"
        plan = self.write_plan(
            tmp_path,
            dict(cell="dir0b:POPS:*", kind="interrupt", attempt=None),
        )
        code = main(
            FAST
            + ["--cache-dir", str(cache_dir)]
            + self.GRID
            + ["--fault-plan", plan]
        )
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err and "--resume" in err
        # The completed cell was flushed before the stop: resuming only
        # simulates the remaining one.
        capsys.readouterr()
        assert main(
            FAST + ["--cache-dir", str(cache_dir)] + self.GRID + ["--resume"]
        ) == 0
        assert "(1 simulated, 1 cached, 0 failed)" in capsys.readouterr().err

    def test_resume_requires_cache_dir(self, capsys):
        assert main(FAST + self.GRID + ["--resume"]) == 2
        assert "--resume requires --cache-dir" in capsys.readouterr().err

    def test_bad_resilience_flags_exit_2(self, capsys):
        assert main(FAST + self.GRID + ["--retries", "-1"]) == 2
        assert "--retries" in capsys.readouterr().err
        assert main(FAST + self.GRID + ["--cell-timeout", "0"]) == 2
        assert "--cell-timeout" in capsys.readouterr().err
        assert main(FAST + self.GRID + ["--max-failures", "-1"]) == 2
        assert "--max-failures" in capsys.readouterr().err

    def test_unreadable_fault_plan_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "plan.json"
        bad.write_text("{not json")
        assert main(FAST + self.GRID + ["--fault-plan", str(bad)]) == 2
        assert "cannot read fault plan" in capsys.readouterr().err

    def test_cache_faults_degrade_not_fail(self, tmp_path, capsys):
        """put-error faults leave results usable and the exit code clean."""
        plan = self.write_plan(
            tmp_path,
            dict(cell="*", kind="put-error", attempt=None),
        )
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert main(FAST + cache + self.GRID + ["--fault-plan", plan]) == 0
        capsys.readouterr()
        # Nothing landed on disk, so the second run re-simulates cleanly.
        assert main(FAST + cache + self.GRID) == 0
        assert "(2 simulated, 0 cached, 0 failed)" in capsys.readouterr().err


class TestFiniteCommand:
    #: Tiny grid: two schemes, two geometries, all three traces.
    FINITE = [
        "finite",
        "--schemes",
        "dir0b",
        "wti",
        "--geometries",
        "8x2",
        "inf",
    ]

    def test_prints_cycles_vs_geometry_table(self, capsys):
        assert main(FAST + self.FINITE) == 0
        captured = capsys.readouterr()
        out = captured.out
        assert "Bus cycles per reference vs cache geometry" in out
        assert "dir0b" in out and "wti" in out
        lines = out.strip().splitlines()
        rows = [line.split()[0] for line in lines[3:]]
        assert rows == ["8x2", "inf"]  # smallest cache first, infinite last
        assert "refs/sec" in captured.err  # metrics stay on stderr

    def test_output_is_deterministic(self, capsys):
        assert main(FAST + self.FINITE) == 0
        first = capsys.readouterr().out
        assert main(FAST + ["--jobs", "2"] + self.FINITE) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_default_schemes_are_the_papers_four(self, capsys):
        """Acceptance: cycles/ref vs cache size for Dir1NB, Dir0B, WTI, Dragon."""
        assert main(
            ["--scale", "2048", "finite", "--geometries", "8x2", "inf"]
        ) == 0
        out = capsys.readouterr().out
        header = out.strip().splitlines()[1]
        assert header.split() == ["geometry", "dir1nb", "wti", "dir0b", "dragon"]

    def test_finite_caches_cost_more_cycles_than_infinite(self, capsys):
        assert main(FAST + self.FINITE) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        finite_row = [float(x) for x in lines[3].split()[1:]]
        infinite_row = [float(x) for x in lines[4].split()[1:]]
        assert all(f > i for f, i in zip(finite_row, infinite_row))


class TestObservability:
    def test_profile_prints_stage_table(self, capsys):
        assert main(FAST + ["profile", "--protocols", "dir1nb"]) == 0
        out = capsys.readouterr().out
        assert "dir1nb / POPS" in out
        for stage in (
            "trace-generation",
            "geometry-stage",
            "protocol-transition",
            "counter-accounting",
        ):
            assert stage in out
        assert "refs/sec" in out

    def test_profile_grid_and_metrics_json(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "profile.json"
        assert main(
            FAST
            + [
                "profile",
                "--protocols",
                "dir0b",
                "dragon",
                "--traces",
                "POPS",
                "--metrics-json",
                str(metrics),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "dir0b / POPS" in out and "dragon / POPS" in out
        payload = json.loads(metrics.read_text())
        # Two runs accumulated into one registry.
        assert payload["timers"]["profile.wall"]["count"] == 2

    def test_profile_accepts_schemes_alias(self):
        args = build_parser().parse_args(["profile", "--schemes", "wti"])
        assert args.protocols == ["wti"]

    def test_compare_emit_trace_is_valid_chrome_trace(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        assert main(
            FAST
            + ["compare", "--schemes", "dir0b", "--emit-trace", str(trace)]
        ) == 0
        assert "wrote Chrome trace" in capsys.readouterr().err
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(event["ph"] == "X" for event in events)
        # One metadata track per sweep cell (3 traces x 1 scheme).
        names = [e["args"]["name"] for e in events if e["ph"] == "M"]
        assert len(names) == 3
        assert all(name.startswith("dir0b/") for name in names)

    def test_sweep_metrics_json_matches_report(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "metrics.json"
        assert main(
            FAST + SWEEP + ["--metrics-json", str(metrics)]
        ) == 0
        assert "wrote metrics" in capsys.readouterr().err
        payload = json.loads(metrics.read_text())
        assert payload["cells"] == 6
        assert payload["simulated"] == 6
        assert payload["registry"]["counters"]["sweep.simulated"] == 6

    def test_emit_trace_bypasses_cache_with_identical_tables(
        self, tmp_path, capsys
    ):
        import json

        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert main(FAST + cache + SWEEP) == 0
        plain = capsys.readouterr().out
        trace = tmp_path / "trace.json"
        assert main(
            FAST + cache + SWEEP + ["--emit-trace", str(trace)]
        ) == 0
        probed = capsys.readouterr()
        assert probed.out == plain  # probes never perturb results
        assert "(6 simulated, 0 cached, 0 failed)" in probed.err  # cache bypassed
        events = json.loads(trace.read_text())["traceEvents"]
        assert sum(1 for e in events if e["ph"] == "X") > 0

    def test_finite_accepts_obs_flags(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "metrics.json"
        assert main(
            FAST
            + [
                "finite",
                "--schemes",
                "dir0b",
                "--geometries",
                "8x2",
                "--metrics-json",
                str(metrics),
            ]
        ) == 0
        assert json.loads(metrics.read_text())["cells"] == 3

    def test_verbose_flag_logs_sweep_lifecycle(self, capsys):
        assert main(FAST + ["-v"] + SWEEP) == 0
        err = capsys.readouterr().err
        assert "sweep started" in err and "sweep finished" in err

    def test_log_json_emits_json_lines(self, capsys):
        import json

        assert main(FAST + ["--log-level", "info", "--log-json"] + SWEEP) == 0
        err = capsys.readouterr().err
        started = [
            line
            for line in err.splitlines()
            if line.startswith("{") and '"sweep started"' in line
        ]
        assert len(started) == 1
        payload = json.loads(started[0])
        assert payload["cells"] == 6
        assert payload["logger"] == "repro.runner.sweep"

    def test_quiet_by_default(self, capsys):
        assert main(FAST + ["compare", "--schemes", "dir0b"]) == 0
        err = capsys.readouterr().err
        assert "sweep started" not in err

    def test_emit_trace_unwritable_path_exits_cleanly(self, tmp_path):
        missing = tmp_path / "no" / "such" / "dir" / "trace.json"
        with pytest.raises(SystemExit, match="cannot write"):
            main(FAST + ["compare", "--schemes", "dir0b", "--emit-trace", str(missing)])

    def test_metrics_json_unwritable_path_exits_cleanly(self, tmp_path):
        missing = tmp_path / "no" / "such" / "dir" / "metrics.json"
        with pytest.raises(SystemExit, match="cannot write"):
            main(
                FAST
                + ["compare", "--schemes", "dir0b", "--metrics-json", str(missing)]
            )


class TestErrorPaths:
    def test_export_trace_unwritable_path_exits_cleanly(self, tmp_path):
        missing = tmp_path / "no" / "such" / "dir" / "out.trace"
        with pytest.raises(SystemExit, match="cannot write"):
            main(FAST + ["export-trace", "POPS", str(missing)])

    def test_export_trace_unknown_trace_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export-trace", "NOPE", "out.trace"])

    def test_modelcheck_nonpositive_config_rejected(self, capsys):
        assert main(["modelcheck", "dir0b", "--caches", "0"]) == 2
        assert "must be >= 1" in capsys.readouterr().err
        assert main(["modelcheck", "dir0b", "--depth", "0"]) == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_modelcheck_violation_exits_nonzero(self, capsys, monkeypatch):
        import repro.core
        from repro.core.modelcheck import ModelCheckReport

        failing = ModelCheckReport(
            protocol="dir0b",
            n_caches=2,
            n_blocks=1,
            depth=2,
            sequences_explored=1,
            steps_executed=2,
            counterexample=((0, 1, 0),),
            error="stale read observed",
        )
        monkeypatch.setattr(
            repro.core, "model_check", lambda *args, **kwargs: failing
        )
        with pytest.raises(SystemExit) as excinfo:
            main(["modelcheck", "dir0b"])
        assert excinfo.value.code == 1
        assert "VIOLATION" in capsys.readouterr().out

class TestTelemetryCli:
    """The distributed-telemetry surface: span export, OpenMetrics,
    heartbeat/status flags, and the ``status`` verb."""

    def test_sweep_emits_spans_openmetrics_and_status(self, tmp_path, capsys):
        import importlib.util
        import json
        from pathlib import Path

        spans = tmp_path / "spans.json"
        metrics = tmp_path / "metrics.om"
        status = tmp_path / "sweep.status.json"
        assert main(
            FAST
            + ["--jobs", "2"]
            + SWEEP
            + [
                "--emit-spans", str(spans),
                "--metrics-openmetrics", str(metrics),
                "--status-file", str(status),
                "--heartbeat-seconds", "0.05",
            ]
        ) == 0
        err = capsys.readouterr().err
        assert "wrote" in err and "spans" in err
        assert "wrote OpenMetrics" in err

        # The span trace passes the real validator and spans two workers.
        tool = Path(__file__).parents[1] / "tools" / "validate_trace.py"
        spec = importlib.util.spec_from_file_location("validate_trace", tool)
        validator = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(validator)
        summary = validator.validate_trace(spans)
        assert "OK" in summary and "spans" in summary
        events = json.loads(spans.read_text())["traceEvents"]
        worker_pids = {
            e["pid"]
            for e in events
            if e.get("ph") == "X" and e.get("cat") in ("attempt", "stage")
        }
        assert len(worker_pids) >= 2

        text = metrics.read_text()
        assert text.startswith("# TYPE")
        assert "repro_sweep_simulated_total 6" in text
        assert text.endswith("# EOF\n")

        snapshot = json.loads(status.read_text())
        assert snapshot["state"] == "finished"
        assert snapshot["done"] == snapshot["cells"] == 6

        # A follow-up status invocation (separate entry point) renders it.
        assert main(["status", "--status-file", str(status)]) == 0
        out = capsys.readouterr().out
        assert "finished" in out and "6/6 done" in out

    def test_worker_metrics_merge_into_metrics_json(self, tmp_path):
        """Satellite regression, end to end: cache hits scored inside
        --jobs workers must show up in the parent's --metrics-json."""
        import json

        cache = ["--cache-dir", str(tmp_path / "cache")]
        warm = tmp_path / "warm.json"
        assert main(FAST + cache + SWEEP) == 0  # populate the cache
        assert main(
            FAST + ["--jobs", "2"] + cache + SWEEP
            + ["--metrics-json", str(warm)]
        ) == 0
        payload = json.loads(warm.read_text())
        assert payload["registry"]["counters"]["sweep.cache_hits"] == 6
        assert payload["registry"]["counters"]["cache.hit"] >= 6

    def test_compare_accepts_openmetrics_flag(self, tmp_path):
        metrics = tmp_path / "compare.om"
        assert main(
            FAST
            + ["compare", "--schemes", "dir0b",
               "--metrics-openmetrics", str(metrics)]
        ) == 0
        assert metrics.read_text().endswith("# EOF\n")

    def test_negative_heartbeat_is_a_usage_error(self, capsys):
        assert main(FAST + SWEEP + ["--heartbeat-seconds", "-1"]) == 2
        assert "heartbeat" in capsys.readouterr().err

    def test_emit_spans_unwritable_path_exits_cleanly(self, tmp_path):
        missing = tmp_path / "no" / "such" / "dir" / "spans.json"
        with pytest.raises(SystemExit, match="cannot write"):
            main(FAST + SWEEP + ["--emit-spans", str(missing)])

    def test_openmetrics_unwritable_path_exits_cleanly(self, tmp_path):
        missing = tmp_path / "no" / "such" / "dir" / "m.om"
        with pytest.raises(SystemExit, match="cannot write"):
            main(
                FAST + SWEEP + ["--metrics-openmetrics", str(missing)]
            )


class TestStatusWatch:
    """The --watch loop must survive its snapshot being cleaned away."""

    def _running_snapshot(self, tmp_path):
        from repro.obs import write_status

        path = tmp_path / "sweep.status.json"
        write_status(
            path, {"state": "running", "cells": 2, "done": 1, "ok": 1}
        )
        return path

    def test_watch_exits_zero_when_snapshot_disappears(
        self, tmp_path, capsys, monkeypatch
    ):
        """Satellite regression: a cache clean mid-watch ends the watch
        with exit 0, not a crash or an error exit."""
        import repro.cli as cli

        path = self._running_snapshot(tmp_path)

        def vanish(_seconds):
            path.unlink()

        monkeypatch.setattr(cli.time, "sleep", vanish)
        assert (
            main(["status", "--status-file", str(path), "--watch", "0.01"])
            == 0
        )
        captured = capsys.readouterr()
        assert "running" in captured.out
        assert "disappeared" in captured.err

    def test_missing_snapshot_is_still_an_error_without_watch(
        self, tmp_path, capsys
    ):
        missing = tmp_path / "nope.status.json"
        assert main(["status", "--status-file", str(missing)]) == 1
        assert "no readable snapshot" in capsys.readouterr().err

    def test_cache_dir_discovery_survives_stat_race(
        self, tmp_path, monkeypatch
    ):
        """A snapshot deleted between glob and stat must not crash
        discovery while another candidate remains."""
        import repro.cli as cli
        from pathlib import Path

        survivor = self._running_snapshot(tmp_path)
        doomed = tmp_path / "gone.status.json"
        doomed.write_text("{}")

        real_stat = Path.stat

        def racy_stat(self, **kwargs):
            if self.name == doomed.name:
                raise FileNotFoundError(doomed)
            return real_stat(self, **kwargs)

        monkeypatch.setattr(Path, "stat", racy_stat)
        args = cli.build_parser().parse_args(
            ["status", "--cache-dir", str(tmp_path)]
        )
        assert cli._status_snapshot_path(args) == survivor
