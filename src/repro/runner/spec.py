"""Sweep specifications: one cell of the experiment grid, hashable on disk.

A :class:`RunSpec` names everything that determines a simulation's outcome —
protocol, trace, scale, seed, cache count, block size, cache geometry,
sharing model, hardware characterization — and nothing that doesn't (worker
count, cache directory, progress hooks).  Two consequences fall out of that discipline:

* a spec can be shipped to a worker process and executed there with no
  shared state, and
* :meth:`RunSpec.cache_key` is a *complete* description of the result, so
  the on-disk cache can safely replay it.

The cache key hashes the spec's simulation parameters **plus the fully
resolved workload profile** (every calibrated field, including the seed and
scaled region sizes).  Recalibrating a workload therefore invalidates cached
results automatically; only genuinely identical runs hit.  A schema version
*and the package version* are folded in, so counting-semantics changes and
plain upgrades both retire stale caches — results pickled by an older
``repro`` install can never be served as warm hits.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from .._version import __version__ as PACKAGE_VERSION
from ..characterization import Characterization, load_characterization
from ..core.simulator import BACKENDS, SimulationResult, simulate
from ..interconnect.bus import BusCostModel, pipelined_bus
from ..memory.cache import CacheGeometry
from ..protocols.base import CoherenceProtocol
from ..protocols.registry import (
    PAPER_CORE_SCHEMES,
    PROTOCOLS,
    create_protocol,
    unknown_protocol_message,
)
from ..trace.record import DEFAULT_BLOCK_SIZE, TraceRecord
from ..trace.stream import SharingModel
from ..trace.synthetic import SyntheticWorkload, WorkloadProfile
from ..trace.workloads import DEFAULT_SCALE, standard_profile, standard_trace_names

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "INFINITE_GEOMETRY",
    "RunSpec",
    "normalize_geometry",
    "sweep_grid",
]

#: Bump when counting semantics or the result format change, so previously
#: cached results stop matching.  (The package version is folded into the
#: key as well, so releases retire caches even without a schema bump.)
#: v3: the key grew a ``characterization=`` token (the content hash of the
#: spec's hardware characterization file, or ``none``).
CACHE_SCHEMA_VERSION = 3

#: Spec-string spellings of the paper's infinite caches.
INFINITE_GEOMETRY = "inf"
_INFINITE_SPELLINGS = frozenset({"", INFINITE_GEOMETRY, "infinite"})


def normalize_geometry(
    geometry: Union[None, str, CacheGeometry],
) -> Optional[str]:
    """Canonical geometry spec string: ``None`` for infinite, else "SETSxWAYS".

    Accepts ``None``, the spellings ``"inf"``/``"infinite"``/``""``, a
    spec string like ``"64x4"``, or a :class:`CacheGeometry` instance.
    Raises ``ValueError`` for anything unparsable.
    """
    if geometry is None:
        return None
    if isinstance(geometry, CacheGeometry):
        return geometry.spec
    text = str(geometry).strip().lower()
    if text in _INFINITE_SPELLINGS:
        return None
    return CacheGeometry.parse(text).spec


@dataclass(frozen=True)
class RunSpec:
    """One cell of a sweep: (protocol, trace, scale, config, geometry, seed).

    ``seed=None`` uses the trace's calibrated default seed; an explicit
    seed re-seeds the workload (the sweep's variance axis).  ``geometry``
    is a ``"SETSxWAYS"`` spec string (finite set-associative LRU caches) or
    ``None`` for the paper's infinite caches.  ``backend`` selects the
    simulation engine (``"reference"`` or ``"fast"``); the backends are
    counter-identical, but the cache key still embeds the backend so a
    regression in one can never serve cached results to the other.

    ``characterization`` names a hardware characterization (a bundled name
    like ``"pipelined"`` or a TOML/CSV path; see
    :mod:`repro.characterization`).  It is a *pricing* axis: simulated
    counters never depend on it, so the cache key embeds the file's
    **content hash** (keys change exactly when the file's content changes)
    while :meth:`base_cache_key` — the key with the axis cleared — stays
    shared across characterizations, which is what lets the sweep re-price
    one simulation under k hardware models.
    """

    protocol: str
    trace: str
    scale: float = DEFAULT_SCALE
    n_caches: int = 4
    block_size: int = DEFAULT_BLOCK_SIZE
    sharing_model: SharingModel = SharingModel.PROCESS
    seed: Optional[int] = None
    geometry: Optional[str] = None
    backend: str = "reference"
    characterization: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "protocol", self.protocol.lower())
        object.__setattr__(self, "trace", self.trace.upper())
        if self.protocol not in PROTOCOLS:
            raise ValueError(unknown_protocol_message(self.protocol))
        if self.trace not in standard_trace_names():
            known = ", ".join(standard_trace_names())
            raise ValueError(f"unknown trace {self.trace!r}; known: {known}")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.n_caches <= 0:
            raise ValueError(f"n_caches must be positive, got {self.n_caches}")
        if self.block_size <= 0:
            raise ValueError(f"block_size must be positive, got {self.block_size}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        object.__setattr__(self, "geometry", normalize_geometry(self.geometry))
        if self.characterization is not None:
            # Fail fast (CharacterizationError is a ValueError) and pin the
            # content hash at construction, so a file edited mid-sweep cannot
            # smear two contents across one grid.
            object.__setattr__(
                self,
                "_characterization_hash",
                load_characterization(self.characterization).content_hash(),
            )

    # -- construction of the pieces -----------------------------------------

    def profile(self) -> WorkloadProfile:
        """The fully resolved workload profile this spec simulates."""
        return standard_profile(self.trace, scale=self.scale, seed=self.seed)

    def build_trace(self) -> Iterable[TraceRecord]:
        return SyntheticWorkload(self.profile()).records()

    def build_protocol(self) -> CoherenceProtocol:
        return create_protocol(self.protocol, self.n_caches)

    def build_geometry(self) -> Optional[CacheGeometry]:
        """The parsed cache geometry, or ``None`` for infinite caches."""
        if self.geometry is None:
            return None
        return CacheGeometry.parse(self.geometry)

    def load_characterization(self) -> Optional[Characterization]:
        """The spec's hardware characterization, or ``None`` when unset."""
        if self.characterization is None:
            return None
        return load_characterization(self.characterization)

    def bus_model(self) -> BusCostModel:
        """The cost model this cell is priced under (pipelined default)."""
        loaded = self.load_characterization()
        return pipelined_bus() if loaded is None else loaded.bus_model()

    # -- identity ------------------------------------------------------------

    def characterization_hash(self) -> Optional[str]:
        """Content hash of the characterization, pinned at construction."""
        return getattr(self, "_characterization_hash", None)

    def base_spec(self) -> "RunSpec":
        """This spec with the pricing axis cleared.

        Two specs with the same base spec simulate identical counters — the
        paper's Section 4.1 frequency/cost independence — so the sweep
        engine simulates one and re-prices the rest.
        """
        if self.characterization is None:
            return self
        return replace(self, characterization=None)

    def as_dict(self) -> dict:
        """The spec as plain JSON-able data (manifests, ``--metrics-json``)."""
        return {
            "protocol": self.protocol,
            "trace": self.trace,
            "scale": self.scale,
            "n_caches": self.n_caches,
            "block_size": self.block_size,
            "sharing_model": self.sharing_model.value,
            "seed": self.seed,
            "geometry": self.geometry or INFINITE_GEOMETRY,
            "backend": self.backend,
            "characterization": self.characterization,
            "characterization_hash": self.characterization_hash(),
        }

    def cell_id(self) -> str:
        """Human-readable cell identity within a grid (fault-plan matching).

        Spells the axes a grid typically varies —
        ``protocol:TRACE:bBLOCK:gGEOMETRY:sharing:seedSEED`` — so fnmatch
        patterns like ``"dir0b:POPS:*"`` select cells without knowing the
        opaque :meth:`cache_key` hash.  Unlike the cache key it omits
        scale/versions and is **not** a replay identity.
        """
        seed = "cal" if self.seed is None else str(self.seed)
        return (
            f"{self.protocol}:{self.trace}:b{self.block_size}"
            f":g{self.geometry or INFINITE_GEOMETRY}"
            f":{self.sharing_model.value}:seed{seed}"
        )

    def _cache_token(self, characterization_hash: Optional[str]) -> str:
        return "|".join(
            (
                f"version={PACKAGE_VERSION}",
                f"schema={CACHE_SCHEMA_VERSION}",
                f"protocol={self.protocol}",
                f"n_caches={self.n_caches}",
                f"block_size={self.block_size}",
                f"geometry={self.geometry or INFINITE_GEOMETRY}",
                f"sharing={self.sharing_model.value}",
                f"backend={self.backend}",
                f"characterization={characterization_hash or 'none'}",
                f"profile={self.profile()!r}",
            )
        )

    def cache_key(self) -> str:
        """Stable content hash identifying this spec's result on disk.

        The characterization axis contributes its file's *content hash*, so
        renaming or moving a characterization file keeps cached results warm
        while editing any value inside it retires them.
        """
        token = self._cache_token(self.characterization_hash())
        return hashlib.sha256(token.encode("utf-8")).hexdigest()[:40]

    def base_cache_key(self) -> str:
        """The cache key with the pricing axis cleared (re-pricing identity).

        Every characterization of the same simulation shares this key; the
        sweep engine stores results under it (alongside the full key) so a
        later sweep with a brand-new characterization file still costs zero
        simulations.
        """
        token = self._cache_token(None)
        return hashlib.sha256(token.encode("utf-8")).hexdigest()[:40]

    # -- execution -----------------------------------------------------------

    def run(self, probe=None) -> SimulationResult:
        """Simulate this cell from scratch (no cache involved).

        ``probe`` is an optional :class:`~repro.obs.probe.ReferenceProbe`
        streaming the cell's per-reference events; it never changes the
        counted result.
        """
        return simulate(
            self.build_protocol(),
            self.build_trace(),
            trace_name=self.trace,
            block_size=self.block_size,
            sharing_model=self.sharing_model,
            geometry=self.build_geometry(),
            probe=probe,
            backend=self.backend,
        )


def sweep_grid(
    protocols: Sequence[str] = PAPER_CORE_SCHEMES,
    traces: Optional[Sequence[str]] = None,
    scale: float = DEFAULT_SCALE,
    n_caches: int = 4,
    block_sizes: Sequence[int] = (DEFAULT_BLOCK_SIZE,),
    geometries: Sequence[Union[None, str, CacheGeometry]] = (None,),
    sharing_models: Sequence[SharingModel] = (SharingModel.PROCESS,),
    seeds: Sequence[Optional[int]] = (None,),
    backend: str = "reference",
    characterizations: Sequence[Optional[str]] = (None,),
) -> List[RunSpec]:
    """The cross product of every sweep axis, in deterministic order.

    Axis order (outer to inner): protocol, trace, block size, geometry,
    sharing model, seed, characterization — so results group by protocol
    the way the paper's tables present them, and all pricings of one
    simulation sit adjacent (they share a :meth:`RunSpec.base_cache_key`
    and cost one simulation between them, see ``docs/characterization.md``).
    """
    if not protocols:
        raise ValueError("at least one protocol is required")
    if not characterizations:
        raise ValueError("at least one characterization (or None) is required")
    trace_names: Tuple[str, ...] = tuple(traces or standard_trace_names())
    return [
        RunSpec(
            protocol=protocol,
            trace=trace,
            scale=scale,
            n_caches=n_caches,
            block_size=block_size,
            sharing_model=sharing_model,
            seed=seed,
            geometry=geometry,
            backend=backend,
            characterization=characterization,
        )
        for protocol in protocols
        for trace in trace_names
        for block_size in block_sizes
        for geometry in geometries
        for sharing_model in sharing_models
        for seed in seeds
        for characterization in characterizations
    ]
