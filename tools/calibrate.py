"""Calibration diagnostic: compare synthetic-trace event rates to Table 4.

Run:  python tools/calibrate.py [scale_denominator]
"""

import sys
import time

from repro.core import run_standard_comparison
from repro.interconnect import nonpipelined_bus, pipelined_bus
from repro.trace import collect_stats, standard_trace, standard_trace_names

PAPER_TABLE4 = {
    # (dir1nb, wti, dir0b, dragon) percentages, None where the paper has '-'
    "instr": (49.72, 49.72, 49.72, 49.72),
    "read": (39.82, 39.82, 39.82, 39.82),
    "rd-hit": (34.32, 38.88, 38.88, 39.20),
    "rd-miss(rm)": (5.18, 0.62, 0.62, 0.30),
    "rm-blk-cln": (4.78, None, 0.23, 0.14),
    "rm-blk-drty": (0.40, None, 0.40, 0.17),
    "rm-first-ref": (0.32, 0.32, 0.32, 0.32),
    "write": (10.46, 10.46, 10.46, 10.46),
    "wrt-hit(wh)": (10.19, 10.25, 10.25, 10.36),
    "wh-blk-cln": (None, None, 0.41, None),
    "wh-blk-drty": (None, None, 9.84, None),
    "wh-distrib": (None, None, None, 1.74),
    "wh-local": (None, None, None, 8.62),
    "wrt-miss(wm)": (0.17, 0.12, 0.11, 0.02),
    "wm-blk-cln": (0.08, None, 0.02, 0.01),
    "wm-blk-drty": (0.09, None, 0.09, 0.01),
    "wm-first-ref": (0.08, 0.08, 0.08, 0.08),
}
PAPER_CYCLES = {"dir1nb": 0.3210, "wti": 0.1466, "dir0b": 0.0491, "dragon": 0.0336}
SCHEMES = ("dir1nb", "wti", "dir0b", "dragon")


def main():
    denom = float(sys.argv[1]) if len(sys.argv) > 1 else 32.0
    scale = 1.0 / denom
    t0 = time.time()
    for name in standard_trace_names():
        stats = collect_stats(standard_trace(name, scale=scale), name=name)
        print(
            f"{name}: refs={stats.total} instr={stats.instructions/stats.total:.3f} "
            f"rd={stats.data_reads/stats.total:.3f} wr={stats.data_writes/stats.total:.3f} "
            f"spin/rd={stats.lock_spin_fraction_of_reads:.3f} os={stats.os_fraction:.3f} "
            f"blocks={stats.distinct_blocks} shared={stats.shared_blocks}"
        )
    cmp = run_standard_comparison(SCHEMES, scale=scale)
    print(f"\n[{time.time()-t0:.1f}s] Table 4 (measured | paper):")
    header = "".join(f"{s:>22}" for s in SCHEMES)
    print(f"{'event':<14}{header}")
    for key, paper in PAPER_TABLE4.items():
        cells = []
        for i, s in enumerate(SCHEMES):
            measured = cmp.average_event_percent(s, key)
            target = f"{paper[i]:.2f}" if paper[i] is not None else "  -  "
            cells.append(f"{measured:>10.2f} |{target:>8}")
        print(f"{key:<14}" + "".join(f"{c:>22}" for c in cells))
    pb, nb = pipelined_bus(), nonpipelined_bus()
    print("\ncycles/ref (pipelined, measured | paper):")
    for s in SCHEMES:
        print(
            f"  {s:<8} {cmp.average_cycles(s, pb):.4f} | {PAPER_CYCLES[s]:.4f}"
            f"   (non-pipelined {cmp.average_cycles(s, nb):.4f})"
        )
    hist = cmp.pooled_invalidation_histogram("dir0b")
    print(
        "\nFigure 1 fanout %:", [round(x, 1) for x in hist.percentages()],
        " <=1 share:", round(hist.share_at_most(1), 3),
    )


if __name__ == "__main__":
    main()
