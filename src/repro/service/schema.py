"""The sweep service's wire contract: request schema and result payloads.

A sweep submitted over HTTP is a JSON document, validated here against a
**versioned** request schema before anything touches the runner::

    {
      "schema": 1,
      "idempotency_key": "client-retry-token",   // optional, <= 200 chars
      "sweep": {
        "protocols": ["dir0b", "dragon"],
        "traces": ["POPS"],            // default: all standard traces
        "scale": 512,                  // denominator, like the CLI --scale
        "n_caches": 4,
        "block_sizes": [16],
        "geometries": ["inf"],         // "SETSxWAYS" specs or "inf"
        "sharing": ["process"],
        "seeds": [null],               // null = the calibrated default seed
        "backend": "reference",
        "characterizations": [null]    // bundled names or server-side paths
      },
      "options": {
        "jobs": 1,                     // worker processes inside the sweep
        "retries": 0,
        "cell_timeout": null,
        "keep_going": true
      }
    }

:func:`parse_request` validates *everything* and collects every problem —
unknown fields, wrong types, unknown protocols (with the registry's
did-you-mean message), grids larger than the server's ``max_cells`` — into
one :class:`RequestError`, which the HTTP layer renders as a 422 with the
full ``details`` list.  A valid request becomes a :class:`SweepRequest`:
the resolved :class:`~repro.runner.spec.RunSpec` grid plus the runner
options, with :meth:`SweepRequest.sweep_key` as the dedupe identity (the
same grid hash the journal uses, so identical submissions collide no
matter how their axes were spelled).

:func:`report_payload` is the other direction: a finished
:class:`~repro.runner.sweep.SweepReport` as plain JSON, carrying each
cell's spec, provenance flags and **counter signature**
(:meth:`~repro.core.counters.SimulationCounters.signature`) — the same
canonical identity the backend-differential suite compares, so a client
can prove an HTTP-submitted sweep bit-identical to a local ``run_sweep``
of the same grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..protocols.registry import PROTOCOLS, unknown_protocol_message
from ..resilience.journal import SweepJournal
from ..runner.spec import RunSpec, normalize_geometry, sweep_grid
from ..runner.sweep import SweepReport
from ..trace.stream import SharingModel
from ..trace.workloads import standard_trace_names

__all__ = [
    "MAX_IDEMPOTENCY_KEY_LENGTH",
    "REQUEST_SCHEMA_VERSION",
    "RequestError",
    "SweepOptions",
    "SweepRequest",
    "parse_request",
    "report_payload",
    "validate_idempotency_key",
]

#: Bump when the request document's shape changes incompatibly.  Requests
#: naming a different version are rejected up front (422), never guessed at.
REQUEST_SCHEMA_VERSION = 1

#: Result-payload schema version stamped into ``report_payload`` documents.
RESULT_SCHEMA_VERSION = 1

#: Hard ceiling on a single request's grid unless the server lowers it.
DEFAULT_MAX_CELLS = 4096

_SWEEP_FIELDS = frozenset(
    {
        "protocols",
        "traces",
        "scale",
        "n_caches",
        "block_sizes",
        "geometries",
        "sharing",
        "seeds",
        "backend",
        "characterizations",
    }
)

_OPTION_FIELDS = frozenset({"jobs", "retries", "cell_timeout", "keep_going"})


class RequestError(ValueError):
    """An invalid sweep request: every problem found, as structured data.

    ``details`` is a list of ``{"field": <dotted path>, "error": <message>}``
    dicts — the HTTP layer ships it verbatim in the 422 body so a client
    can fix all its mistakes in one round trip.
    """

    def __init__(self, details: Sequence[Mapping[str, str]]) -> None:
        self.details: List[Dict[str, str]] = [dict(d) for d in details]
        summary = "; ".join(
            f"{d['field']}: {d['error']}" for d in self.details[:3]
        )
        if len(self.details) > 3:
            summary += f" (+{len(self.details) - 3} more)"
        super().__init__(f"invalid sweep request: {summary}")


@dataclass(frozen=True)
class SweepOptions:
    """Runner knobs a request may set (bounded by the server)."""

    jobs: int = 1
    retries: int = 0
    cell_timeout: Optional[float] = None
    keep_going: bool = True


#: Longest accepted client-supplied idempotency key.
MAX_IDEMPOTENCY_KEY_LENGTH = 200


@dataclass(frozen=True)
class SweepRequest:
    """A validated submission: the resolved grid plus runner options."""

    specs: Tuple[RunSpec, ...]
    options: SweepOptions
    #: Client-supplied retry token (body field or Idempotency-Key header):
    #: resubmissions carrying the same key return the original job, even a
    #: terminal one, instead of creating new work.  Not part of sweep_key().
    idempotency_key: Optional[str] = None

    def cache_keys(self) -> List[str]:
        return [spec.cache_key() for spec in self.specs]

    def sweep_key(self) -> str:
        """The grid's dedupe identity (the journal's sweep key)."""
        return SweepJournal.sweep_key(self.cache_keys())


class _Collector:
    """Accumulates validation errors with dotted field paths."""

    def __init__(self) -> None:
        self.details: List[Dict[str, str]] = []

    def error(self, field: str, message: str) -> None:
        self.details.append({"field": field, "error": message})

    def raise_if_any(self) -> None:
        if self.details:
            raise RequestError(self.details)


def _string_list(
    errors: _Collector, field: str, value: object, allow_none_items: bool = False
) -> Optional[List[Optional[str]]]:
    """``value`` as a non-empty list of strings (or None items), else None."""
    if not isinstance(value, (list, tuple)) or not value:
        errors.error(field, "must be a non-empty list")
        return None
    items: List[Optional[str]] = []
    for index, item in enumerate(value):
        if item is None and allow_none_items:
            items.append(None)
        elif isinstance(item, str):
            items.append(item)
        else:
            kind = "strings or nulls" if allow_none_items else "strings"
            errors.error(f"{field}[{index}]", f"must be a list of {kind}")
            return None
    return items


def _number(
    errors: _Collector,
    field: str,
    value: object,
    minimum: Optional[float] = None,
    integer: bool = False,
) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        errors.error(field, "must be a number")
        return None
    if integer and not float(value).is_integer():
        errors.error(field, "must be an integer")
        return None
    if minimum is not None and value < minimum:
        errors.error(field, f"must be >= {minimum:g}")
        return None
    return float(value)


def _parse_sweep_axes(errors: _Collector, sweep: Mapping[str, object]) -> dict:
    """Validate the ``sweep`` section into ``sweep_grid`` keyword arguments."""
    for key in sorted(set(sweep) - _SWEEP_FIELDS):
        errors.error(f"sweep.{key}", "unknown field")
    axes: dict = {}

    protocols = _string_list(errors, "sweep.protocols", sweep.get("protocols"))
    if protocols is not None:
        for index, name in enumerate(protocols):
            if name.lower() not in PROTOCOLS:
                errors.error(
                    f"sweep.protocols[{index}]", unknown_protocol_message(name)
                )
        axes["protocols"] = tuple(name.lower() for name in protocols)

    if "traces" in sweep:
        traces = _string_list(errors, "sweep.traces", sweep.get("traces"))
        if traces is not None:
            known = standard_trace_names()
            for index, name in enumerate(traces):
                if name.upper() not in known:
                    errors.error(
                        f"sweep.traces[{index}]",
                        f"unknown trace {name!r}; known: {', '.join(known)}",
                    )
            axes["traces"] = tuple(name.upper() for name in traces)

    denominator = _number(errors, "sweep.scale", sweep.get("scale", 16), minimum=1e-9)
    if denominator is not None:
        axes["scale"] = 1.0 / denominator

    n_caches = _number(
        errors, "sweep.n_caches", sweep.get("n_caches", 4), minimum=1, integer=True
    )
    if n_caches is not None:
        axes["n_caches"] = int(n_caches)

    block_sizes = sweep.get("block_sizes", [16])
    if not isinstance(block_sizes, (list, tuple)) or not block_sizes:
        errors.error("sweep.block_sizes", "must be a non-empty list")
    else:
        sizes = []
        for index, size in enumerate(block_sizes):
            parsed = _number(
                errors, f"sweep.block_sizes[{index}]", size, minimum=1, integer=True
            )
            if parsed is not None:
                sizes.append(int(parsed))
        axes["block_sizes"] = tuple(sizes)

    geometries = sweep.get("geometries", ["inf"])
    parsed_geometries = _string_list(
        errors, "sweep.geometries", geometries, allow_none_items=True
    )
    if parsed_geometries is not None:
        normalized = []
        for index, geometry in enumerate(parsed_geometries):
            try:
                normalized.append(normalize_geometry(geometry))
            except ValueError as error:
                errors.error(f"sweep.geometries[{index}]", str(error))
        axes["geometries"] = tuple(normalized)

    sharing = sweep.get("sharing", [SharingModel.PROCESS.value])
    parsed_sharing = _string_list(errors, "sweep.sharing", sharing)
    if parsed_sharing is not None:
        models = []
        known_models = ", ".join(model.value for model in SharingModel)
        for index, name in enumerate(parsed_sharing):
            try:
                models.append(SharingModel(name))
            except ValueError:
                errors.error(
                    f"sweep.sharing[{index}]",
                    f"unknown sharing model {name!r}; known: {known_models}",
                )
        axes["sharing_models"] = tuple(models)

    seeds = sweep.get("seeds", [None])
    if not isinstance(seeds, (list, tuple)) or not seeds:
        errors.error("sweep.seeds", "must be a non-empty list")
    else:
        parsed_seeds = []
        for index, seed in enumerate(seeds):
            if seed is None:
                parsed_seeds.append(None)
                continue
            value = _number(
                errors, f"sweep.seeds[{index}]", seed, minimum=0, integer=True
            )
            if value is not None:
                parsed_seeds.append(int(value))
        axes["seeds"] = tuple(parsed_seeds)

    backend = sweep.get("backend", "reference")
    if not isinstance(backend, str):
        errors.error("sweep.backend", "must be a string")
    else:
        axes["backend"] = backend

    characterizations = sweep.get("characterizations", [None])
    parsed_models = _string_list(
        errors, "sweep.characterizations", characterizations, allow_none_items=True
    )
    if parsed_models is not None:
        axes["characterizations"] = tuple(parsed_models)

    return axes


def _parse_options(
    errors: _Collector, options: Mapping[str, object], max_jobs: int
) -> SweepOptions:
    for key in sorted(set(options) - _OPTION_FIELDS):
        errors.error(f"options.{key}", "unknown field")
    jobs = _number(errors, "options.jobs", options.get("jobs", 1), 1, integer=True)
    if jobs is not None and jobs > max_jobs:
        errors.error("options.jobs", f"this server allows at most {max_jobs} jobs")
        jobs = None
    retries = _number(
        errors, "options.retries", options.get("retries", 0), 0, integer=True
    )
    cell_timeout: Optional[float] = None
    if options.get("cell_timeout") is not None:
        cell_timeout = _number(
            errors, "options.cell_timeout", options.get("cell_timeout"), 1e-9
        )
    keep_going = options.get("keep_going", True)
    if not isinstance(keep_going, bool):
        errors.error("options.keep_going", "must be a boolean")
        keep_going = True
    return SweepOptions(
        jobs=int(jobs) if jobs is not None else 1,
        retries=int(retries) if retries is not None else 0,
        cell_timeout=cell_timeout,
        keep_going=keep_going,
    )


def parse_request(
    payload: object,
    max_cells: int = DEFAULT_MAX_CELLS,
    max_jobs: int = 1,
) -> SweepRequest:
    """Validate one submission document into a :class:`SweepRequest`.

    Collects every validation problem before raising, so the 422 response
    names all of them.  ``max_cells`` bounds the resolved grid and
    ``max_jobs`` bounds ``options.jobs`` (both are server policy).
    """
    errors = _Collector()
    if not isinstance(payload, Mapping):
        errors.error("", "request body must be a JSON object")
        errors.raise_if_any()

    known_fields = {"schema", "sweep", "options", "idempotency_key"}
    for key in sorted(set(payload) - known_fields):
        errors.error(key, "unknown field")

    idempotency_key = payload.get("idempotency_key")
    if idempotency_key is not None:
        problem = validate_idempotency_key(idempotency_key)
        if problem is not None:
            errors.error("idempotency_key", problem)
            idempotency_key = None

    schema = payload.get("schema", REQUEST_SCHEMA_VERSION)
    if schema != REQUEST_SCHEMA_VERSION:
        errors.error(
            "schema",
            f"unsupported schema version {schema!r}; this server speaks "
            f"{REQUEST_SCHEMA_VERSION}",
        )

    sweep = payload.get("sweep")
    if not isinstance(sweep, Mapping):
        errors.error("sweep", "required and must be an object")
        errors.raise_if_any()

    options_section = payload.get("options", {})
    if not isinstance(options_section, Mapping):
        errors.error("options", "must be an object")
        options_section = {}

    axes = _parse_sweep_axes(errors, sweep)
    options = _parse_options(errors, options_section, max_jobs=max_jobs)
    errors.raise_if_any()

    try:
        specs = sweep_grid(**axes)
    except ValueError as error:
        # Axis values that validate individually but not jointly (e.g. a
        # characterization file the server cannot load).
        raise RequestError([{"field": "sweep", "error": str(error)}]) from None
    if len(specs) > max_cells:
        raise RequestError(
            [
                {
                    "field": "sweep",
                    "error": (
                        f"grid has {len(specs)} cells; this server allows "
                        f"at most {max_cells} per request"
                    ),
                }
            ]
        )
    return SweepRequest(
        specs=tuple(specs),
        options=options,
        idempotency_key=idempotency_key,
    )


def validate_idempotency_key(value: object) -> Optional[str]:
    """The problem with a client-supplied idempotency key, or None if fine.

    Shared by the body path (``parse_request``) and the header path
    (``Idempotency-Key``, validated in :meth:`JobManager.submit` before
    any parsing), so both spellings obey one contract.
    """
    if not isinstance(value, str):
        return "must be a string"
    if not value:
        return "must not be empty"
    if len(value) > MAX_IDEMPOTENCY_KEY_LENGTH:
        return f"must be at most {MAX_IDEMPOTENCY_KEY_LENGTH} characters"
    return None


def report_payload(report: SweepReport) -> dict:
    """A finished sweep as plain JSON: summary, metrics, per-cell signatures.

    The ``outcomes`` list is in spec order (the runner's determinism
    contract) and each successful cell carries the canonical counter
    signature, so bit-identity against a local run is a straight ``==``
    on this document's ``signature`` fields.
    """
    outcomes = []
    for outcome in report.outcomes:
        entry: dict = {
            "spec": outcome.spec.as_dict(),
            "cell_id": outcome.spec.cell_id(),
            "cache_key": outcome.spec.cache_key(),
            "ok": outcome.ok,
            "cached": outcome.cached,
            "repriced": outcome.repriced,
            "elapsed_s": outcome.elapsed,
        }
        if outcome.ok:
            entry["references"] = outcome.result.references
            entry["signature"] = outcome.result.counters.signature()
        else:
            entry["error"] = outcome.error.to_dict()
        outcomes.append(entry)
    return {
        "schema": RESULT_SCHEMA_VERSION,
        "cells": report.cells,
        "simulated": report.simulations,
        "repriced": report.repricings,
        "cache_hits": report.cache_hits,
        "failures": len(report.failures),
        "wall_s": report.wall_time,
        "jobs": report.jobs,
        "total_references": report.total_references,
        "cell_table": report.cell_table(),
        "metrics": report.metrics_dict(),
        "outcomes": outcomes,
    }
