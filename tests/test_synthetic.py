"""Unit tests for the synthetic workload engine."""

import random

import pytest

from repro.trace.record import AccessType
from repro.trace.synthetic import (
    Region,
    SyntheticWorkload,
    WorkloadProfile,
    generate_trace,
)


def small_profile(**overrides):
    defaults = dict(name="test", length=5000, seed=7)
    defaults.update(overrides)
    return WorkloadProfile(**defaults)


class TestRegion:
    def test_block_addresses_are_block_aligned(self):
        region = Region("r", base_block=10, n_blocks=4, block_size=16)
        assert region.block_address(0) == 160
        assert region.block_address(3) == 208

    def test_out_of_range_index_raises(self):
        region = Region("r", base_block=0, n_blocks=2, block_size=16)
        with pytest.raises(IndexError):
            region.block_address(2)

    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            Region("r", base_block=0, n_blocks=0, block_size=16)

    def test_random_block_address_stays_in_region(self):
        region = Region("r", base_block=5, n_blocks=3, block_size=16)
        rng = random.Random(0)
        for _ in range(50):
            address = region.random_block_address(rng)
            assert 5 * 16 <= address < 8 * 16

    def test_hot_block_address_prefers_hot_prefix(self):
        region = Region("r", base_block=0, n_blocks=100, block_size=16)
        rng = random.Random(0)
        hot_hits = sum(
            region.hot_block_address(rng, hot_fraction=0.1, hot_probability=0.9)
            < 10 * 16
            for _ in range(1000)
        )
        # ~0.9 + 0.1*0.1 ≈ 91% of accesses land in the hot 10%
        assert hot_hits > 800


class TestWorkloadProfile:
    def test_scaled_shrinks_length_and_regions(self):
        profile = small_profile(
            length=10000, private_blocks_per_process=400
        ).scaled(0.5)
        assert profile.length == 5000
        assert profile.private_blocks_per_process == 200

    def test_scaled_keeps_lock_structure(self):
        profile = small_profile(n_locks=3, guarded_blocks_per_lock=24).scaled(0.1)
        assert profile.n_locks == 3
        assert profile.guarded_blocks_per_lock == 24

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            small_profile().scaled(0)

    def test_region_floor(self):
        profile = small_profile(shared_readonly_blocks=100).scaled(0.001)
        assert profile.shared_readonly_blocks >= 8


class TestSyntheticWorkload:
    def test_exact_length(self):
        trace = list(generate_trace(small_profile(length=1234)))
        assert len(trace) == 1234

    def test_deterministic_for_seed(self):
        a = list(generate_trace(small_profile(seed=11)))
        b = list(generate_trace(small_profile(seed=11)))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(generate_trace(small_profile(seed=1)))
        b = list(generate_trace(small_profile(seed=2)))
        assert a != b

    def test_cpu_and_pid_ranges(self):
        profile = small_profile(processes=3, processors=2)
        for rec in generate_trace(profile):
            assert 0 <= rec.pid < 3
            assert 0 <= rec.cpu < 2

    def test_instruction_share_is_half(self):
        trace = list(generate_trace(small_profile(length=20000)))
        instr = sum(r.access is AccessType.INSTR for r in trace)
        assert abs(instr / len(trace) - 0.5) < 0.01

    def test_spins_marked_only_on_reads(self):
        profile = small_profile(length=20000, w_lock=3.0, n_locks=1)
        for rec in generate_trace(profile):
            if rec.is_lock_spin:
                assert rec.access is AccessType.READ

    def test_lock_contention_produces_spins(self):
        profile = small_profile(
            length=40000, w_lock=2.0, n_locks=1, lock_hold_turns=(10, 20)
        )
        spins = sum(r.is_lock_spin for r in generate_trace(profile))
        assert spins > 100

    def test_os_records_marked(self):
        profile = small_profile(length=20000, os_activity_fraction=0.3)
        os_refs = sum(r.is_os for r in generate_trace(profile))
        assert os_refs > 0

    def test_addresses_nonzero_and_block_aligned(self):
        for rec in generate_trace(small_profile(length=2000)):
            assert rec.address > 0
            assert rec.address % 16 == 0

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            SyntheticWorkload(small_profile(processes=0))

    def test_single_process_workload_runs(self):
        profile = small_profile(processes=1, processors=1, length=2000)
        trace = list(generate_trace(profile))
        assert len(trace) == 2000
        assert all(r.pid == 0 for r in trace)

    def test_zero_weight_activities_never_drawn(self):
        profile = small_profile(
            length=10000,
            w_lock=0,
            w_barrier=0,
            w_migratory=0,
            w_produce=0,
            w_consume=0,
            w_shared_read=0,
            os_activity_fraction=0,
        )
        trace = list(generate_trace(profile))
        assert not any(r.is_lock_spin for r in trace)
        assert not any(r.is_os for r in trace)

    def test_migration_changes_cpu_assignment(self):
        profile = small_profile(
            length=60000, migration_rate=0.05, processes=4, processors=4
        )
        cpus_per_pid = {}
        for rec in generate_trace(profile):
            cpus_per_pid.setdefault(rec.pid, set()).add(rec.cpu)
        assert any(len(cpus) > 1 for cpus in cpus_per_pid.values())
