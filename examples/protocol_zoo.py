#!/usr/bin/env python3
"""The full protocol zoo on one axis, plus the system-level extensions.

Runs *every* implemented coherence scheme — the paper's four, its Section 6
directory variants, and the related-work snoopy protocols its bibliography
cites — over the calibrated traces, then applies the two system-level
models this library adds beyond the paper:

* the bus-contention speedup curve (how many processors one bus really
  sustains once queueing kicks in), and
* the Section 7 distributed-directory bandwidth argument, with request
  rates measured from the simulation.

Run:  python examples/protocol_zoo.py [scale_denominator]
"""

import sys

from repro import pipelined_bus, run_standard_comparison
from repro.analysis import (
    BusContentionModel,
    knee_processors,
    load_model_from_result,
    speedup_curve,
)
from repro.protocols import protocol_names

#: Skip the parameterised duplicates; keep one representative per scheme.
ZOO = (
    "dir1nb",
    "dirnnb",
    "dir0b",
    "dir1b",
    "dir2nb",
    "tang",
    "yenfu",
    "coarse",
    "wti",
    "writeonce",
    "illinois",
    "berkeley",
    "dragon",
    "firefly",
    "softflush",
)


def main() -> None:
    denominator = float(sys.argv[1]) if len(sys.argv) > 1 else 64.0
    print(
        f"Simulating {len(ZOO)} of {len(protocol_names())} registered "
        f"schemes over 3 traces at 1/{denominator:g} scale ..."
    )
    comparison = run_standard_comparison(ZOO, scale=1.0 / denominator)
    bus = pipelined_bus()

    from repro.protocols import create_protocol

    print()
    print(f"{'scheme':<10} {'kind':<10} {'cycles/ref':>10}")
    ranked = sorted(ZOO, key=lambda s: comparison.average_cycles(s, bus))
    for scheme in ranked:
        kind = create_protocol(scheme, 4).kind
        print(
            f"{scheme:<10} {kind:<10} "
            f"{comparison.average_cycles(scheme, bus):>10.4f}"
        )

    best = comparison.average_cycles(ranked[0], bus)
    model = BusContentionModel(cycles_per_reference=best)
    print()
    print(
        f"Bus-contention speedup at the best scheme's traffic "
        f"({ranked[0]}, demand {model.demand_fraction:.3f} per processor):"
    )
    for n, s in speedup_curve(model, (1, 4, 8, 16, 32, 64)).items():
        bar = "#" * int(round(s))
        print(f"  n={n:<3} speedup {s:5.1f} {bar}")
    print(f"  knee: ~{knee_processors(model)} processors")

    print()
    load = load_model_from_result(comparison.result("dir0b", "POPS"))
    print(
        "Distributed vs centralised directory+memory utilisation "
        f"(measured: dir {load.directory_rate:.4f}/ref, "
        f"mem {load.memory_rate:.4f}/ref):"
    )
    for n, row in load.sweep((4, 16, 64, 256)).items():
        print(
            f"  n={n:<4} centralised {row['centralized']:6.2f}   "
            f"distributed {row['distributed']:6.2f}"
        )
    print(
        f"  a centralised module saturates near "
        f"{load.max_processors_centralized()} processors; distributing it "
        "keeps per-module load flat (the paper's Section 7 argument)."
    )


if __name__ == "__main__":
    main()
