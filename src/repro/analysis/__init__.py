"""Analysis layer: the paper's tables, figures and section experiments."""

from .contention import BusContentionModel, knee_processors, speedup_curve
from .distribution import DirectoryLoadModel, load_model_from_result
from .figures import (
    Figure1,
    Figure4,
    RangeBars,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
)
from .network import NetworkScaling, network_scaling
from .scalability import (
    BroadcastCostLine,
    PointerSweepPoint,
    broadcast_cost_line,
    directory_storage_bits,
    sweep_dirib,
    sweep_dirinb,
)
from .scaling import (
    ScalingPoint,
    dirib_broadcast_scaling,
    dirinb_miss_scaling,
    fanout_scaling,
    scale_profile_to_processors,
)
from .sensitivity import (
    FiniteSensitivityTable,
    OverheadLine,
    finite_sensitivity,
    overhead_lines,
    relative_gap,
)
from .spinlock import SpinLockImpact, spin_lock_impact
from .tables import (
    TABLE4_ROWS,
    Table4,
    Table5,
    render_table1,
    render_table2,
    table1,
    table2,
    table3,
    table4,
    table5,
)

__all__ = [
    "BusContentionModel",
    "knee_processors",
    "speedup_curve",
    "DirectoryLoadModel",
    "load_model_from_result",
    "NetworkScaling",
    "network_scaling",
    "ScalingPoint",
    "dirib_broadcast_scaling",
    "dirinb_miss_scaling",
    "fanout_scaling",
    "scale_profile_to_processors",
    "Figure1",
    "Figure4",
    "RangeBars",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "BroadcastCostLine",
    "PointerSweepPoint",
    "broadcast_cost_line",
    "directory_storage_bits",
    "sweep_dirib",
    "sweep_dirinb",
    "FiniteSensitivityTable",
    "OverheadLine",
    "finite_sensitivity",
    "overhead_lines",
    "relative_gap",
    "SpinLockImpact",
    "spin_lock_impact",
    "TABLE4_ROWS",
    "Table4",
    "Table5",
    "render_table1",
    "render_table2",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
]
