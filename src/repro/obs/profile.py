"""Pipeline profiler: where does a simulation's wall time actually go?

:func:`profile_spec` runs one sweep cell with every pipeline stage wrapped
in a wall-time :class:`~repro.obs.metrics.Timer` — trace generation, the
geometry stage, the protocol transition, and counter accounting — and
returns a :class:`ProfileReport` with per-stage seconds, per-reference
nanoseconds, and overall throughput (the ``repro-coherence profile`` CLI
verb renders it as a table).

The instrumentation wraps the pipeline's existing seams (the trace
iterator, the :class:`~repro.core.pipeline.GeometryStage` interface, the
protocol access callable, and :meth:`SimulationCounters.record`) rather
than duplicating the feed loop, so the profiled run produces bit-identical
counters to an unprofiled one; the timer calls themselves slow the run
several-fold, which the report surfaces as the residual "pipeline overhead"
row.  Profile runs are therefore for *attributing* time, never for
absolute throughput numbers — the plain benchmark suite measures those.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, Optional

from ..core.counters import SimulationCounters
from ..core.pipeline import GeometryStage, ReferencePipeline, SimulationResult
from ..trace.record import TraceRecord
from .metrics import MetricsRegistry, Timer

if TYPE_CHECKING:  # typing only: keeps obs importable before repro.runner
    from ..runner.spec import RunSpec

__all__ = ["ProfileReport", "STAGES", "profile_spec"]

#: Stage keys, in pipeline order.
STAGE_TRACE = "trace-generation"
STAGE_GEOMETRY = "geometry-stage"
STAGE_PROTOCOL = "protocol-transition"
STAGE_COUNTERS = "counter-accounting"
STAGES = (STAGE_TRACE, STAGE_GEOMETRY, STAGE_PROTOCOL, STAGE_COUNTERS)

#: Residual row: feed-loop dispatch plus the profiler's own timer calls.
STAGE_OTHER = "other (loop + probes)"


def _timed_records(
    records: Iterable[TraceRecord], timer: Timer
) -> Iterator[TraceRecord]:
    """Yield ``records``, charging generator time to ``timer``."""
    iterator = iter(records)
    add = timer.add
    while True:
        start = perf_counter()
        try:
            record = next(iterator)
        except StopIteration:
            add(perf_counter() - start)
            return
        add(perf_counter() - start)
        yield record


class _TimedStage(GeometryStage):
    """Charge an inner geometry stage's hook time to a timer."""

    def __init__(self, inner: GeometryStage, timer: Timer) -> None:
        self._inner = inner
        self._timer = timer
        self.spec = inner.spec

    def before_access(
        self, unit: int, block: int, counters: SimulationCounters
    ) -> None:
        start = perf_counter()
        self._inner.before_access(unit, block, counters)
        self._timer.add(perf_counter() - start)

    def after_access(self, unit: int, block: int) -> None:
        start = perf_counter()
        self._inner.after_access(unit, block)
        self._timer.add(perf_counter() - start)


class _TimedCounters(SimulationCounters):
    """Charge :meth:`record` time to a timer."""

    __slots__ = ("_timer",)

    def __init__(self, timer: Timer) -> None:
        super().__init__()
        self._timer = timer

    def record(self, outcome) -> None:
        start = perf_counter()
        super().record(outcome)
        self._timer.add(perf_counter() - start)


@dataclass(frozen=True)
class ProfileReport:
    """Per-stage wall-time breakdown of one profiled simulation cell."""

    spec: "RunSpec"
    result: SimulationResult
    #: seconds per stage, keyed by the :data:`STAGES` names
    stages: Dict[str, float]
    wall_seconds: float

    @property
    def references(self) -> int:
        return self.result.references

    @property
    def refs_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.references / self.wall_seconds

    @property
    def other_seconds(self) -> float:
        """Wall time not attributed to a stage (loop + profiling overhead)."""
        return max(0.0, self.wall_seconds - sum(self.stages.values()))

    def render(self) -> str:
        """The per-stage timing table the ``profile`` CLI verb prints."""
        geometry = self.spec.geometry or "inf"
        refs = self.references
        header = f"{'stage':<24}{'seconds':>10}{'% wall':>9}{'ns/ref':>10}"
        lines = [
            f"Pipeline profile: {self.spec.protocol} / {self.spec.trace} "
            f"(geometry {geometry}, {refs:,} refs)",
            header,
            "-" * len(header),
        ]

        def row(name: str, seconds: float) -> str:
            share = 100.0 * seconds / self.wall_seconds if self.wall_seconds else 0.0
            ns = 1e9 * seconds / refs if refs else 0.0
            return f"{name:<24}{seconds:>10.4f}{share:>8.1f}%{ns:>10.0f}"

        for stage in STAGES:
            lines.append(row(stage, self.stages.get(stage, 0.0)))
        lines.append(row(STAGE_OTHER, self.other_seconds))
        lines.append(row("total", self.wall_seconds))
        lines.append(f"throughput: {self.refs_per_sec:,.0f} refs/sec (profiled)")
        return "\n".join(lines)


def profile_spec(
    spec: "RunSpec", registry: Optional[MetricsRegistry] = None
) -> ProfileReport:
    """Run ``spec`` once with per-stage timing instrumentation.

    When a ``registry`` is given, the stage timers live in it under
    ``profile.<stage>`` (plus ``profile.wall``), so several profiled cells
    accumulate into one exportable snapshot.
    """
    registry = registry if registry is not None else MetricsRegistry()
    timers = {stage: registry.timer(f"profile.{stage}") for stage in STAGES}
    # Shared-registry timers accumulate across profiled cells; report deltas.
    before = {stage: timer.total_seconds for stage, timer in timers.items()}

    protocol = spec.build_protocol()
    geometry = spec.build_geometry()
    pipeline = ReferencePipeline(
        protocol,
        geometry=geometry,
        block_size=spec.block_size,
        sharing_model=spec.sharing_model,
    )
    if pipeline._stage is not None:
        pipeline._stage = _TimedStage(pipeline._stage, timers[STAGE_GEOMETRY])
    inner_access = pipeline._access
    protocol_timer = timers[STAGE_PROTOCOL]

    def timed_access(unit, access, block):
        start = perf_counter()
        outcome = inner_access(unit, access, block)
        protocol_timer.add(perf_counter() - start)
        return outcome

    pipeline._access = timed_access

    counters = _TimedCounters(timers[STAGE_COUNTERS])
    records = _timed_records(spec.build_trace(), timers[STAGE_TRACE])
    wall = registry.timer("profile.wall")
    wall_before = wall.total_seconds
    with wall.time():
        pipeline.feed(records, counters)
    result = pipeline.result(spec.trace, counters)

    return ProfileReport(
        spec=spec,
        result=result,
        stages={
            stage: timers[stage].total_seconds - before[stage]
            for stage in STAGES
        },
        wall_seconds=wall.total_seconds - wall_before,
    )
