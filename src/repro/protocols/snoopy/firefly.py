"""The DEC Firefly snoopy protocol (the paper's reference [3]).

Like Dragon, Firefly is **update-based**: writes to shared blocks broadcast
the new word instead of invalidating copies, so shared data never
ping-pongs.  The crucial difference from Dragon: Firefly's shared-write
goes **through to memory as well** (the update transaction writes both the
sibling caches and main memory), so *memory never goes stale for shared
blocks*.  A dirty block exists only while its holder is the sole cache;
the moment a second cache reads it, the owner supplies the data and memory
is updated — after which all misses are served by memory.

Consequences visible in the cost model:

* ``wh-distrib`` updates cost a write-through (memory is in the update
  path), identical in cycles to WTI's writes on both buses;
* ``rm-blk-drty`` can only happen against a sole dirty copy, and it
  transitions the block to everywhere-clean.
"""

from __future__ import annotations

from typing import Optional

from ...interconnect.bus import BusOp
from ...memory.sharing import NO_OWNER
from ..base import AccessOutcome, CoherenceProtocol
from ..events import Event
from ..table import Rule, TransitionTable, compile_rules

__all__ = ["Firefly"]

_FIREFLY_RULES = (
    Rule(write=False, event=Event.READ_HIT, held=True),
    Rule(write=False, event=Event.RM_FIRST_REF, first=True, mask="add"),
    Rule(
        write=False,
        event=Event.RM_BLK_DIRTY,
        dirty="remote",
        ops=((BusOp.FLUSH_REQUEST, 1), (BusOp.WRITE_BACK, 1)),
        clear_dirty=True,
        mask="add",
    ),
    Rule(
        write=False,
        event=Event.RM_BLK_CLEAN,
        fclass=(1, 2),
        ops=((BusOp.CACHE_SUPPLY, 1),),
        mask="add",
    ),
    Rule(
        write=False,
        event=Event.RM_UNCACHED,
        ops=((BusOp.MEM_ACCESS, 1),),
        mask="add",
    ),
    Rule(
        # Shared write: the update goes through to memory too, so the block
        # stays clean everywhere.
        write=True,
        event=Event.WH_DISTRIB,
        held=True,
        fclass=(1, 2),
        ops=((BusOp.WRITE_THROUGH, 1),),
        clear_dirty=True,
    ),
    Rule(write=True, event=Event.WH_LOCAL, held=True, set_dirty=True),
    Rule(
        write=True, event=Event.WM_FIRST_REF, first=True, mask="add", set_dirty=True
    ),
    Rule(
        # Joining a sole dirty holder: the block stays shared and clean, and
        # the written word goes through to memory.
        write=True,
        event=Event.WM_BLK_DIRTY,
        dirty="remote",
        ops=(
            (BusOp.FLUSH_REQUEST, 1),
            (BusOp.WRITE_BACK, 1),
            (BusOp.WRITE_THROUGH, 1),
        ),
        clear_dirty=True,
        mask="add",
    ),
    Rule(
        write=True,
        event=Event.WM_BLK_CLEAN,
        fclass=(1, 2),
        ops=((BusOp.CACHE_SUPPLY, 1), (BusOp.WRITE_THROUGH, 1)),
        mask="add",
    ),
    Rule(
        write=True,
        event=Event.WM_UNCACHED,
        ops=((BusOp.MEM_ACCESS, 1),),
        mask="add",
        set_dirty=True,
    ),
)


class Firefly(CoherenceProtocol):
    """Update-based snoopy protocol with write-through for shared blocks."""

    name = "firefly"
    label = "Firefly"
    kind = "snoopy"

    def _read(self, cache: int, block: int, first_ref: bool) -> AccessOutcome:
        sharing = self.sharing
        if sharing.is_held(block, cache):
            return AccessOutcome(event=Event.READ_HIT)
        if first_ref:
            sharing.add_holder(block, cache)
            return AccessOutcome(event=Event.RM_FIRST_REF)
        owner = self._remote_dirty_owner(cache, block)
        if owner != NO_OWNER:
            # The owner supplies the block and memory is updated in the same
            # transaction; the block is clean-shared from now on.
            sharing.clear_dirty(block)
            sharing.add_holder(block, cache)
            return AccessOutcome(
                event=Event.RM_BLK_DIRTY,
                ops=((BusOp.FLUSH_REQUEST, 1), (BusOp.WRITE_BACK, 1)),
            )
        if sharing.remote_holders(block, cache):
            # Caches assert the shared line and supply the data jointly.
            sharing.add_holder(block, cache)
            return AccessOutcome(
                event=Event.RM_BLK_CLEAN, ops=((BusOp.CACHE_SUPPLY, 1),)
            )
        sharing.add_holder(block, cache)
        return AccessOutcome(event=Event.RM_UNCACHED, ops=((BusOp.MEM_ACCESS, 1),))

    def _write(self, cache: int, block: int, first_ref: bool) -> AccessOutcome:
        sharing = self.sharing
        if sharing.is_held(block, cache):
            if sharing.remote_holders(block, cache):
                # Shared write: one word to the sibling caches AND memory,
                # so the block stays clean everywhere.
                sharing.clear_dirty(block)
                return AccessOutcome(
                    event=Event.WH_DISTRIB, ops=((BusOp.WRITE_THROUGH, 1),)
                )
            sharing.set_dirty(block, cache)
            return AccessOutcome(event=Event.WH_LOCAL)
        if first_ref:
            sharing.add_holder(block, cache)
            sharing.set_dirty(block, cache)
            return AccessOutcome(event=Event.WM_FIRST_REF)
        # Write miss: fetch (cache-supplied when shared), then the write
        # behaves as above.
        owner = self._remote_dirty_owner(cache, block)
        remote = sharing.remote_holders(block, cache)
        if owner != NO_OWNER:
            event = Event.WM_BLK_DIRTY
            ops = [(BusOp.FLUSH_REQUEST, 1), (BusOp.WRITE_BACK, 1)]
            sharing.clear_dirty(block)
        elif remote:
            event = Event.WM_BLK_CLEAN
            ops = [(BusOp.CACHE_SUPPLY, 1)]
        else:
            event = Event.WM_UNCACHED
            ops = [(BusOp.MEM_ACCESS, 1)]
        sharing.add_holder(block, cache)
        if sharing.remote_holders(block, cache):
            ops.append((BusOp.WRITE_THROUGH, 1))
        else:
            sharing.set_dirty(block, cache)
        return AccessOutcome(event=event, ops=tuple(ops))

    def compile_table(self) -> Optional[TransitionTable]:
        return compile_rules(self.name, _FIREFLY_RULES)
