#!/usr/bin/env python3
"""Bring your own workload: custom profiles, trace files, finite caches.

Shows the three ways to feed the simulator beyond the built-in POPS / THOR /
PERO profiles:

1. build a custom :class:`WorkloadProfile` (here: an 8-process
   producer/consumer pipeline with one contended queue lock);
2. round-trip the trace through the ATUM-style file formats — which is also
   how *real* captured traces enter the simulator;
3. re-run the same workload with finite set-associative caches to see
   capacity misses stack on top of the sharing cost.

Run:  python examples/custom_trace.py
"""

import tempfile
from pathlib import Path

from repro import (
    CacheGeometry,
    collect_stats,
    pipelined_bus,
    simulate,
    simulate_finite,
)
from repro.protocols import create_protocol
from repro.trace.atum import read_binary, write_binary
from repro.trace.synthetic import SyntheticWorkload, WorkloadProfile


def build_pipeline_profile() -> WorkloadProfile:
    """An 8-process software pipeline: heavy mailbox traffic, one queue lock."""
    return WorkloadProfile(
        name="PIPELINE",
        length=80_000,
        seed=7,
        processes=8,
        processors=8,
        w_compute=8.0,
        w_produce=1.5,
        w_consume=1.5,
        w_migratory=0.2,
        w_lock=0.3,
        n_locks=1,
        lock_hold_turns=(10, 25),
        mailbox_blocks_per_process=64,
        private_blocks_per_process=300,
    )


def main() -> None:
    profile = build_pipeline_profile()
    bus = pipelined_bus()

    # 1. Generate and characterise the custom workload.
    trace = list(SyntheticWorkload(profile).records())
    stats = collect_stats(trace, name=profile.name)
    print(
        f"{stats.name}: {stats.total} refs, "
        f"{stats.processes} processes, "
        f"{100 * stats.shared_block_fraction:.0f}% of blocks shared, "
        f"{100 * stats.lock_spin_fraction_of_reads:.0f}% of reads are spins"
    )

    # 2. Round-trip through the binary ATUM-style format.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "pipeline.atum"
        write_binary(path, trace)
        print(
            f"wrote {path.stat().st_size / 1024:.0f} KiB trace file; "
            "re-reading it for simulation"
        )
        reloaded = list(read_binary(path))
    assert reloaded == trace

    # 3. Simulate with infinite caches, then with finite ones.
    print()
    print(f"{'scheme':<10} {'infinite':>10} {'64x2 finite':>12} {'evictions':>10}")
    for scheme in ("dir0b", "dirnnb", "dragon", "wti"):
        infinite = simulate(create_protocol(scheme, 8), iter(reloaded))
        finite = simulate_finite(
            create_protocol(scheme, 8),
            iter(reloaded),
            CacheGeometry(n_sets=64, associativity=2),
        )
        print(
            f"{scheme:<10} "
            f"{infinite.cycles_per_reference(bus):>10.4f} "
            f"{finite.result.cycles_per_reference(bus):>12.4f} "
            f"{finite.evictions:>10}"
        )
    print(
        "\nFinite caches add capacity misses on top of the coherence cost -\n"
        "the first-order correction the paper describes in Section 4."
    )


if __name__ == "__main__":
    main()
